//! The SIMT execution engine.
//!
//! Executes a [`Kernel`] over a [`LaunchConfig`] with warp-lockstep
//! *accounting* and produces both the per-thread outputs and a fully
//! accounted [`KernelStats`].
//!
//! **Virtual-time model.** Within a warp, every lockstep step costs
//! [`DeviceSpec::cycles_per_warp_step`] cycles and the warp runs until its
//! slowest lane finishes. A block costs the sum of its warps (one warp
//! issues at a time per SM — an intentional simplification of Fermi's dual
//! schedulers that preserves the *relative* cost of configurations). Blocks
//! are assigned to SMs round-robin, an SM's busy time is the sum of its
//! blocks, and the kernel's device time is the busiest SM — so a grid
//! smaller than the device finishes no faster by leaving SMs idle, and a
//! grid larger than the device queues, exactly the saturation behaviour of
//! the paper's Fig. 5.
//!
//! **Real execution.** Lane programs really run (they play full random
//! games), but *not* in interpreted lockstep: because lanes are independent
//! (`Kernel::step` takes `&self` and all mutable state is per-lane), each
//! lane runs start-to-finish in one tight pass and warp timing is
//! reconstructed analytically — `warp_steps = max(lane_steps)` and
//! `idle = warp_steps · lanes − Σ lane_steps` — which is exactly what the
//! per-step masked interpreter measured, at a fraction of the wall-clock
//! cost. The interpreter is retained as [`execute_kernel_lockstep`], the
//! oracle the equivalence test-suite checks the fast engine against.
//! Blocks are distributed over a persistent [`WorkerPool`] and folded in
//! block order, so results are bit-identical regardless of pool size.

use crate::device::DeviceSpec;
use crate::kernel::{Kernel, LaunchConfig, ThreadId};
use crate::launch::LaunchResult;
use crate::pool::WorkerPool;
use crate::stats::KernelStats;
use pmcts_util::GpuFault;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Per-block simulation result, later folded into the launch result.
struct BlockOutcome<O> {
    block: u32,
    outputs: Vec<O>,
    cycles: u64,
    warp_steps: u64,
    lane_steps: u64,
    idle_lane_steps: u64,
}

/// Simulates one block by running every lane to completion and accounting
/// warp divergence analytically.
fn simulate_block<K: Kernel>(
    kernel: &K,
    block: u32,
    config: &LaunchConfig,
    spec: &DeviceSpec,
) -> BlockOutcome<K::Output> {
    let tpb = config.threads_per_block;
    let warp = spec.warp_size;
    let mut outputs = Vec::with_capacity(tpb as usize);
    let mut cycles = 0u64;
    let mut warp_steps_total = 0u64;
    let mut lane_steps_total = 0u64;
    let mut idle_total = 0u64;

    let mut tids: Vec<ThreadId> = Vec::with_capacity(warp as usize);
    let mut lane_results: Vec<(K::Output, u64)> = Vec::with_capacity(warp as usize);
    let mut warp_start = 0u32;
    while warp_start < tpb {
        let lanes = warp.min(tpb - warp_start);
        tids.clear();
        for lane in 0..lanes {
            let thread = warp_start + lane;
            tids.push(ThreadId {
                block,
                thread,
                global: block * tpb + thread,
            });
        }
        // One warp at a time through the kernel's batch entry point: lane
        // batches (e.g. bit-parallel multi-lane playouts) run here, with
        // outputs and step counts contractually identical to per-lane
        // `run_lane` calls.
        lane_results.clear();
        kernel.run_lanes(&tids, &mut lane_results);
        assert_eq!(
            lane_results.len(),
            lanes as usize,
            "run_lanes must produce one (output, steps) per lane"
        );
        let mut max_steps = 0u64;
        let mut sum_steps = 0u64;
        for (output, steps) in lane_results.drain(..) {
            outputs.push(output);
            max_steps = max_steps.max(steps);
            sum_steps += steps;
        }
        // The warp runs until its slowest lane finishes; every step a
        // finished lane sits through is idle — identical to what the masked
        // lockstep interpreter counts step by step.
        cycles += max_steps * spec.cycles_per_warp_step;
        warp_steps_total += max_steps;
        lane_steps_total += sum_steps;
        idle_total += max_steps * lanes as u64 - sum_steps;
        warp_start += lanes;
    }

    BlockOutcome {
        block,
        outputs,
        cycles,
        warp_steps: warp_steps_total,
        lane_steps: lane_steps_total,
        idle_lane_steps: idle_total,
    }
}

/// Simulates one block with the per-step masked lockstep interpreter — the
/// original engine, kept verbatim as the oracle.
fn simulate_block_lockstep<K: Kernel>(
    kernel: &K,
    block: u32,
    config: &LaunchConfig,
    spec: &DeviceSpec,
) -> BlockOutcome<K::Output> {
    let tpb = config.threads_per_block;
    let warp = spec.warp_size;
    let mut outputs = Vec::with_capacity(tpb as usize);
    let mut cycles = 0u64;
    let mut warp_steps_total = 0u64;
    let mut lane_steps_total = 0u64;
    let mut idle_total = 0u64;

    let mut lane_ids: Vec<ThreadId> = Vec::with_capacity(warp as usize);
    let mut states: Vec<Option<K::ThreadState>> = Vec::with_capacity(warp as usize);
    let mut lane_steps: Vec<u64> = Vec::with_capacity(warp as usize);

    let mut warp_start = 0u32;
    while warp_start < tpb {
        let lanes = warp.min(tpb - warp_start);
        lane_ids.clear();
        states.clear();
        lane_steps.clear();
        for lane in 0..lanes {
            let thread = warp_start + lane;
            let tid = ThreadId {
                block,
                thread,
                global: block * tpb + thread,
            };
            lane_ids.push(tid);
            states.push(Some(kernel.init(tid)));
            lane_steps.push(0);
        }

        // Lockstep: one pass over live lanes per step; a lane that returns
        // `true` is masked out (its Option stays Some until finish()).
        let mut live = lanes as usize;
        let mut done = vec![false; lanes as usize];
        let mut steps_this_warp = 0u64;
        while live > 0 {
            steps_this_warp += 1;
            for lane in 0..lanes as usize {
                if done[lane] {
                    continue;
                }
                let state = states[lane].as_mut().expect("live lane has state");
                lane_steps[lane] += 1;
                if kernel.step(state, lane_ids[lane]) {
                    done[lane] = true;
                    live -= 1;
                }
            }
        }

        cycles += steps_this_warp * spec.cycles_per_warp_step;
        warp_steps_total += steps_this_warp;
        let useful: u64 = lane_steps.iter().sum();
        lane_steps_total += useful;
        idle_total += steps_this_warp * lanes as u64 - useful;

        for lane in 0..lanes as usize {
            let state = states[lane].take().expect("state present at finish");
            outputs.push(kernel.finish(state, lane_ids[lane]));
        }
        warp_start += lanes;
    }

    BlockOutcome {
        block,
        outputs,
        cycles,
        warp_steps: warp_steps_total,
        lane_steps: lane_steps_total,
        idle_lane_steps: idle_total,
    }
}

/// Folds per-block outcomes (sorted by block id) into the launch result:
/// round-robin block→SM assignment, device time = busiest SM.
fn fold_outcomes<K: Kernel>(
    kernel: &K,
    config: &LaunchConfig,
    spec: &DeviceSpec,
    mut block_outcomes: Vec<BlockOutcome<K::Output>>,
) -> LaunchResult<K::Output> {
    block_outcomes.sort_by_key(|o| o.block);

    let mut per_sm_cycles = vec![0u64; spec.sm_count as usize];
    let mut warp_steps = 0u64;
    let mut lane_steps = 0u64;
    let mut idle_lane_steps = 0u64;
    let mut outputs = Vec::with_capacity(config.total_threads() as usize);
    for outcome in block_outcomes {
        per_sm_cycles[(outcome.block % spec.sm_count) as usize] += outcome.cycles;
        warp_steps += outcome.warp_steps;
        lane_steps += outcome.lane_steps;
        idle_lane_steps += outcome.idle_lane_steps;
        outputs.extend(outcome.outputs);
    }
    let max_sm_cycles = per_sm_cycles.iter().copied().max().unwrap_or(0);

    let stats = KernelStats {
        threads: config.total_threads(),
        warps: config.warps_per_block(spec) * config.blocks,
        launch_overhead: spec.launch_overhead,
        device_time: spec.cycles_to_time(max_sm_cycles),
        readback_time: spec.transfer_time(config.total_threads() as u64 * kernel.output_bytes()),
        warp_steps,
        lane_steps,
        idle_lane_steps,
        per_sm_cycles,
        occupancy: spec.occupancy(config),
    };

    LaunchResult {
        outputs,
        stats,
        fault: GpuFault::None,
    }
}

/// Applies an injected fault to a finished launch.
///
/// The executor always runs the kernel fault-free; faults are an overlay on
/// the *result*, so the lane programs (and hence every RNG draw) are
/// identical with and without injection. [`GpuFault::Slowdown`] inflates
/// the accounted device time; [`GpuFault::Hang`] and
/// [`GpuFault::BlockAbort`] are only recorded — the caller's response
/// policy decides what to void and what virtual time to charge.
pub fn apply_fault<O>(result: &mut LaunchResult<O>, fault: GpuFault) {
    if let GpuFault::Slowdown(factor) = fault {
        result.stats.device_time = result.stats.device_time * factor.max(1) as u64;
    }
    result.fault = fault;
}

/// Executes `kernel` over `config` on the simulated device described by
/// `spec`, fanning blocks out over `pool`'s workers (the calling thread
/// participates, so a 1-worker pool degenerates to an inline loop).
///
/// Outputs are returned in global-thread order (`block * tpb + thread`),
/// matching the layout of the result array a CUDA kernel would write.
pub fn execute_kernel<K: Kernel>(
    kernel: &K,
    config: &LaunchConfig,
    spec: &DeviceSpec,
    pool: &WorkerPool,
) -> LaunchResult<K::Output> {
    let n_blocks = config.blocks;
    let participants = pool.size().min(n_blocks as usize);

    let block_outcomes: Vec<BlockOutcome<K::Output>> = if participants <= 1 {
        (0..n_blocks)
            .map(|b| simulate_block(kernel, b, config, spec))
            .collect()
    } else {
        let next = AtomicU32::new(0);
        let collected: Mutex<Vec<BlockOutcome<K::Output>>> =
            Mutex::new(Vec::with_capacity(n_blocks as usize));
        pool.run_scoped(participants, |_| {
            let mut mine = Vec::new();
            loop {
                let b = next.fetch_add(1, Ordering::Relaxed);
                if b >= n_blocks {
                    break;
                }
                mine.push(simulate_block(kernel, b, config, spec));
            }
            collected
                .lock()
                .expect("block collector poisoned")
                .extend(mine);
        });
        collected.into_inner().expect("block collector poisoned")
    };

    fold_outcomes(kernel, config, spec, block_outcomes)
}

/// Executes `kernel` with the original per-step masked lockstep interpreter,
/// single-threaded.
///
/// This is the *oracle*: slower than [`execute_kernel`] but trivially
/// faithful to the warp-lockstep semantics. The equivalence suite asserts
/// both engines return bit-identical outputs and [`KernelStats`]; the
/// `throughput` bench uses it as the wall-clock baseline. Not used on any
/// search path.
pub fn execute_kernel_lockstep<K: Kernel>(
    kernel: &K,
    config: &LaunchConfig,
    spec: &DeviceSpec,
) -> LaunchResult<K::Output> {
    let block_outcomes = (0..config.blocks)
        .map(|b| simulate_block_lockstep(kernel, b, config, spec))
        .collect();
    fold_outcomes(kernel, config, spec, block_outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_util::SimTime;

    /// Thread `global` runs for `global % modulus + 1` steps and outputs its
    /// step count — fully deterministic divergence for exact accounting
    /// checks.
    struct Countdown {
        modulus: u32,
    }

    impl Kernel for Countdown {
        type ThreadState = (u32, u32); // (remaining, taken)
        type Output = u32;

        fn init(&self, tid: ThreadId) -> (u32, u32) {
            (tid.global % self.modulus + 1, 0)
        }

        fn step(&self, state: &mut (u32, u32), _tid: ThreadId) -> bool {
            state.0 -= 1;
            state.1 += 1;
            state.0 == 0
        }

        fn finish(&self, state: (u32, u32), _tid: ThreadId) -> u32 {
            state.1
        }
    }

    fn scalar_spec() -> DeviceSpec {
        DeviceSpec::scalar()
    }

    fn pool(n: usize) -> WorkerPool {
        WorkerPool::new(n)
    }

    #[test]
    fn outputs_are_in_global_thread_order() {
        let k = Countdown { modulus: 5 };
        let cfg = LaunchConfig::new(3, 8);
        let r = execute_kernel(&k, &cfg, &scalar_spec(), &pool(4));
        assert_eq!(r.outputs.len(), 24);
        for (i, &steps) in r.outputs.iter().enumerate() {
            assert_eq!(steps, i as u32 % 5 + 1);
        }
    }

    #[test]
    fn warp_time_is_max_of_lanes() {
        // One warp of 4 lanes taking 1..=4 steps: warp_steps must be 4,
        // lane_steps 1+2+3+4=10, idle 4*4-10=6.
        let mut spec = scalar_spec();
        spec.warp_size = 4;
        let k = Countdown { modulus: 4 };
        let cfg = LaunchConfig::new(1, 4);
        let r = execute_kernel(&k, &cfg, &spec, &pool(1));
        assert_eq!(r.stats.warp_steps, 4);
        assert_eq!(r.stats.lane_steps, 10);
        assert_eq!(r.stats.idle_lane_steps, 6);
        assert!((r.stats.lane_efficiency() - 10.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_device_has_no_divergence_waste() {
        let k = Countdown { modulus: 7 };
        let cfg = LaunchConfig::new(2, 8);
        let r = execute_kernel(&k, &cfg, &scalar_spec(), &pool(1));
        assert_eq!(r.stats.idle_lane_steps, 0);
        assert_eq!(r.stats.lane_efficiency(), 1.0);
    }

    #[test]
    fn device_time_is_busiest_sm() {
        // 2 SMs, blocks round-robin. Block cycles: modulus=1 => every lane
        // takes 1 step, warp=1 lane, tpb=1 => each block = 1 warp step =
        // 1 cycle. 3 blocks on 2 SMs -> SM0 gets blocks 0,2 (2 cycles),
        // SM1 gets block 1 (1 cycle); device time = 2 cycles = 2ns at 1GHz.
        let mut spec = scalar_spec();
        spec.sm_count = 2;
        let k = Countdown { modulus: 1 };
        let cfg = LaunchConfig::new(3, 1);
        let r = execute_kernel(&k, &cfg, &spec, &pool(2));
        assert_eq!(r.stats.per_sm_cycles, vec![2, 1]);
        assert_eq!(r.stats.device_time, SimTime::from_nanos(2));
    }

    #[test]
    fn results_identical_across_pool_sizes() {
        let k = Countdown { modulus: 9 };
        let cfg = LaunchConfig::new(16, 32);
        let spec = DeviceSpec::tesla_c2050();
        let a = execute_kernel(&k, &cfg, &spec, &pool(1));
        let b = execute_kernel(&k, &cfg, &spec, &pool(8));
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn fast_engine_matches_lockstep_oracle() {
        let k = Countdown { modulus: 9 };
        let cfg = LaunchConfig::new(16, 48);
        let spec = DeviceSpec::tesla_c2050();
        let fast = execute_kernel(&k, &cfg, &spec, &pool(4));
        let oracle = execute_kernel_lockstep(&k, &cfg, &spec);
        assert_eq!(fast.outputs, oracle.outputs);
        assert_eq!(fast.stats, oracle.stats);
    }

    #[test]
    fn launch_overhead_charged_once() {
        let spec = DeviceSpec::tesla_c2050();
        let k = Countdown { modulus: 1 };
        let r = execute_kernel(&k, &LaunchConfig::new(1, 1), &spec, &pool(1));
        assert_eq!(r.stats.launch_overhead, spec.launch_overhead);
        assert!(r.stats.elapsed() >= spec.launch_overhead);
    }

    #[test]
    fn partial_warps_round_up_but_execute_correctly() {
        let mut spec = scalar_spec();
        spec.warp_size = 32;
        let k = Countdown { modulus: 3 };
        let cfg = LaunchConfig::new(1, 40); // 1 full warp + 8-lane partial
        let r = execute_kernel(&k, &cfg, &spec, &pool(1));
        assert_eq!(r.outputs.len(), 40);
        assert_eq!(r.stats.warps, 2);
    }

    #[test]
    fn bigger_grids_take_longer_on_same_device() {
        let spec = DeviceSpec::tesla_c2050();
        let k = Countdown { modulus: 60 };
        let p = pool(4);
        let small = execute_kernel(&k, &LaunchConfig::new(14, 32), &spec, &p);
        let big = execute_kernel(&k, &LaunchConfig::new(140, 32), &spec, &p);
        assert!(big.stats.device_time > small.stats.device_time);
        // 10x blocks on a 14-SM device should be ~10x device time.
        let ratio =
            big.stats.device_time.as_nanos() as f64 / small.stats.device_time.as_nanos() as f64;
        assert!((9.0..11.0).contains(&ratio), "ratio {ratio}");
    }
}
