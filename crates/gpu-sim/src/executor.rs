//! The SIMT execution engine.
//!
//! Executes a [`Kernel`] over a [`LaunchConfig`] with warp-lockstep
//! semantics and produces both the per-thread outputs and a fully accounted
//! [`KernelStats`].
//!
//! **Virtual-time model.** Within a warp, every lockstep step costs
//! [`DeviceSpec::cycles_per_warp_step`] cycles and the warp runs until its
//! slowest lane finishes. A block costs the sum of its warps (one warp
//! issues at a time per SM — an intentional simplification of Fermi's dual
//! schedulers that preserves the *relative* cost of configurations). Blocks
//! are assigned to SMs round-robin, an SM's busy time is the sum of its
//! blocks, and the kernel's device time is the busiest SM — so a grid
//! smaller than the device finishes no faster by leaving SMs idle, and a
//! grid larger than the device queues, exactly the saturation behaviour of
//! the paper's Fig. 5.
//!
//! **Real execution.** Lane programs really run (they play full random
//! games); blocks are distributed over host worker threads for wall-clock
//! speed. Because each block's simulation is self-contained and outputs are
//! written to its own slot, results are bit-identical regardless of host
//! thread count.

use crate::device::DeviceSpec;
use crate::kernel::{Kernel, LaunchConfig, ThreadId};
use crate::launch::LaunchResult;
use crate::stats::KernelStats;
use std::sync::atomic::{AtomicU32, Ordering};

/// Per-block simulation result, later folded into the launch result.
struct BlockOutcome<O> {
    block: u32,
    outputs: Vec<O>,
    cycles: u64,
    warp_steps: u64,
    lane_steps: u64,
    idle_lane_steps: u64,
}

/// Simulates one block: all its warps, each in lockstep.
fn simulate_block<K: Kernel>(
    kernel: &K,
    block: u32,
    config: &LaunchConfig,
    spec: &DeviceSpec,
) -> BlockOutcome<K::Output> {
    let tpb = config.threads_per_block;
    let warp = spec.warp_size;
    let mut outputs = Vec::with_capacity(tpb as usize);
    let mut cycles = 0u64;
    let mut warp_steps_total = 0u64;
    let mut lane_steps_total = 0u64;
    let mut idle_total = 0u64;

    let mut lane_ids: Vec<ThreadId> = Vec::with_capacity(warp as usize);
    let mut states: Vec<Option<K::ThreadState>> = Vec::with_capacity(warp as usize);
    let mut lane_steps: Vec<u64> = Vec::with_capacity(warp as usize);

    let mut warp_start = 0u32;
    while warp_start < tpb {
        let lanes = warp.min(tpb - warp_start);
        lane_ids.clear();
        states.clear();
        lane_steps.clear();
        for lane in 0..lanes {
            let thread = warp_start + lane;
            let tid = ThreadId {
                block,
                thread,
                global: block * tpb + thread,
            };
            lane_ids.push(tid);
            states.push(Some(kernel.init(tid)));
            lane_steps.push(0);
        }

        // Lockstep: one pass over live lanes per step; a lane that returns
        // `true` is masked out (its Option stays Some until finish()).
        let mut live = lanes as usize;
        let mut done = vec![false; lanes as usize];
        let mut steps_this_warp = 0u64;
        while live > 0 {
            steps_this_warp += 1;
            for lane in 0..lanes as usize {
                if done[lane] {
                    continue;
                }
                let state = states[lane].as_mut().expect("live lane has state");
                lane_steps[lane] += 1;
                if kernel.step(state, lane_ids[lane]) {
                    done[lane] = true;
                    live -= 1;
                }
            }
        }

        cycles += steps_this_warp * spec.cycles_per_warp_step;
        warp_steps_total += steps_this_warp;
        let useful: u64 = lane_steps.iter().sum();
        lane_steps_total += useful;
        idle_total += steps_this_warp * lanes as u64 - useful;

        for lane in 0..lanes as usize {
            let state = states[lane].take().expect("state present at finish");
            outputs.push(kernel.finish(state, lane_ids[lane]));
        }
        warp_start += lanes;
    }

    BlockOutcome {
        block,
        outputs,
        cycles,
        warp_steps: warp_steps_total,
        lane_steps: lane_steps_total,
        idle_lane_steps: idle_total,
    }
}

/// Executes `kernel` over `config` on the simulated device described by
/// `spec`, using up to `host_threads` real threads.
///
/// Outputs are returned in global-thread order (`block * tpb + thread`),
/// matching the layout of the result array a CUDA kernel would write.
pub fn execute_kernel<K: Kernel>(
    kernel: &K,
    config: &LaunchConfig,
    spec: &DeviceSpec,
    host_threads: usize,
) -> LaunchResult<K::Output> {
    let n_blocks = config.blocks;
    let workers = host_threads.max(1).min(n_blocks as usize);

    let mut block_outcomes: Vec<BlockOutcome<K::Output>> = if workers <= 1 {
        (0..n_blocks)
            .map(|b| simulate_block(kernel, b, config, spec))
            .collect()
    } else {
        let next = AtomicU32::new(0);
        let mut per_worker: Vec<Vec<BlockOutcome<K::Output>>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move |_| {
                        let mut mine = Vec::new();
                        loop {
                            let b = next.fetch_add(1, Ordering::Relaxed);
                            if b >= n_blocks {
                                break;
                            }
                            mine.push(simulate_block(kernel, b, config, spec));
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                per_worker.push(h.join().expect("kernel worker panicked"));
            }
        })
        .expect("crossbeam scope failed");
        per_worker.into_iter().flatten().collect()
    };

    block_outcomes.sort_by_key(|o| o.block);

    // Round-robin block→SM assignment; device time = busiest SM.
    let mut per_sm_cycles = vec![0u64; spec.sm_count as usize];
    let mut warp_steps = 0u64;
    let mut lane_steps = 0u64;
    let mut idle_lane_steps = 0u64;
    let mut outputs = Vec::with_capacity(config.total_threads() as usize);
    for outcome in block_outcomes {
        per_sm_cycles[(outcome.block % spec.sm_count) as usize] += outcome.cycles;
        warp_steps += outcome.warp_steps;
        lane_steps += outcome.lane_steps;
        idle_lane_steps += outcome.idle_lane_steps;
        outputs.extend(outcome.outputs);
    }
    let max_sm_cycles = per_sm_cycles.iter().copied().max().unwrap_or(0);

    let stats = KernelStats {
        threads: config.total_threads(),
        warps: config.warps_per_block(spec) * config.blocks,
        launch_overhead: spec.launch_overhead,
        device_time: spec.cycles_to_time(max_sm_cycles),
        readback_time: spec.transfer_time(config.total_threads() as u64 * kernel.output_bytes()),
        warp_steps,
        lane_steps,
        idle_lane_steps,
        per_sm_cycles,
        occupancy: spec.occupancy(config),
    };

    LaunchResult { outputs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_util::SimTime;

    /// Thread `global` runs for `global % modulus + 1` steps and outputs its
    /// step count — fully deterministic divergence for exact accounting
    /// checks.
    struct Countdown {
        modulus: u32,
    }

    impl Kernel for Countdown {
        type ThreadState = (u32, u32); // (remaining, taken)
        type Output = u32;

        fn init(&self, tid: ThreadId) -> (u32, u32) {
            (tid.global % self.modulus + 1, 0)
        }

        fn step(&self, state: &mut (u32, u32), _tid: ThreadId) -> bool {
            state.0 -= 1;
            state.1 += 1;
            state.0 == 0
        }

        fn finish(&self, state: (u32, u32), _tid: ThreadId) -> u32 {
            state.1
        }
    }

    fn scalar_spec() -> DeviceSpec {
        DeviceSpec::scalar()
    }

    #[test]
    fn outputs_are_in_global_thread_order() {
        let k = Countdown { modulus: 5 };
        let cfg = LaunchConfig::new(3, 8);
        let r = execute_kernel(&k, &cfg, &scalar_spec(), 4);
        assert_eq!(r.outputs.len(), 24);
        for (i, &steps) in r.outputs.iter().enumerate() {
            assert_eq!(steps, i as u32 % 5 + 1);
        }
    }

    #[test]
    fn warp_time_is_max_of_lanes() {
        // One warp of 4 lanes taking 1..=4 steps: warp_steps must be 4,
        // lane_steps 1+2+3+4=10, idle 4*4-10=6.
        let mut spec = scalar_spec();
        spec.warp_size = 4;
        let k = Countdown { modulus: 4 };
        let cfg = LaunchConfig::new(1, 4);
        let r = execute_kernel(&k, &cfg, &spec, 1);
        assert_eq!(r.stats.warp_steps, 4);
        assert_eq!(r.stats.lane_steps, 10);
        assert_eq!(r.stats.idle_lane_steps, 6);
        assert!((r.stats.lane_efficiency() - 10.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_device_has_no_divergence_waste() {
        let k = Countdown { modulus: 7 };
        let cfg = LaunchConfig::new(2, 8);
        let r = execute_kernel(&k, &cfg, &scalar_spec(), 1);
        assert_eq!(r.stats.idle_lane_steps, 0);
        assert_eq!(r.stats.lane_efficiency(), 1.0);
    }

    #[test]
    fn device_time_is_busiest_sm() {
        // 2 SMs, blocks round-robin. Block cycles: modulus=1 => every lane
        // takes 1 step, warp=1 lane, tpb=1 => each block = 1 warp step =
        // 1 cycle. 3 blocks on 2 SMs -> SM0 gets blocks 0,2 (2 cycles),
        // SM1 gets block 1 (1 cycle); device time = 2 cycles = 2ns at 1GHz.
        let mut spec = scalar_spec();
        spec.sm_count = 2;
        let k = Countdown { modulus: 1 };
        let cfg = LaunchConfig::new(3, 1);
        let r = execute_kernel(&k, &cfg, &spec, 2);
        assert_eq!(r.stats.per_sm_cycles, vec![2, 1]);
        assert_eq!(r.stats.device_time, SimTime::from_nanos(2));
    }

    #[test]
    fn results_identical_across_host_thread_counts() {
        let k = Countdown { modulus: 9 };
        let cfg = LaunchConfig::new(16, 32);
        let spec = DeviceSpec::tesla_c2050();
        let a = execute_kernel(&k, &cfg, &spec, 1);
        let b = execute_kernel(&k, &cfg, &spec, 8);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn launch_overhead_charged_once() {
        let spec = DeviceSpec::tesla_c2050();
        let k = Countdown { modulus: 1 };
        let r = execute_kernel(&k, &LaunchConfig::new(1, 1), &spec, 1);
        assert_eq!(r.stats.launch_overhead, spec.launch_overhead);
        assert!(r.stats.elapsed() >= spec.launch_overhead);
    }

    #[test]
    fn partial_warps_round_up_but_execute_correctly() {
        let mut spec = scalar_spec();
        spec.warp_size = 32;
        let k = Countdown { modulus: 3 };
        let cfg = LaunchConfig::new(1, 40); // 1 full warp + 8-lane partial
        let r = execute_kernel(&k, &cfg, &spec, 1);
        assert_eq!(r.outputs.len(), 40);
        assert_eq!(r.stats.warps, 2);
    }

    #[test]
    fn bigger_grids_take_longer_on_same_device() {
        let spec = DeviceSpec::tesla_c2050();
        let k = Countdown { modulus: 60 };
        let small = execute_kernel(&k, &LaunchConfig::new(14, 32), &spec, 4);
        let big = execute_kernel(&k, &LaunchConfig::new(140, 32), &spec, 4);
        assert!(big.stats.device_time > small.stats.device_time);
        // 10x blocks on a 14-SM device should be ~10x device time.
        let ratio =
            big.stats.device_time.as_nanos() as f64 / small.stats.device_time.as_nanos() as f64;
        assert!((9.0..11.0).contains(&ratio), "ratio {ratio}");
    }
}
