//! Device specifications and the `Device` front-end.
//!
//! A [`DeviceSpec`] is plain data describing the simulated hardware and the
//! cost-model constants; a [`Device`] wraps a spec and exposes synchronous
//! and asynchronous kernel launches. The calibration of the default spec is
//! discussed in `DESIGN.md` §6: constants are chosen so the full Fig. 5
//! sweep lands near the paper's absolute simulations/second on a Tesla
//! C2050, but every experiment re-derives its conclusions from the model, so
//! the *shapes* are robust to recalibration.

use crate::executor::{apply_fault, execute_kernel};
use crate::kernel::{Kernel, LaunchConfig};
use crate::launch::{LaunchResult, PendingLaunch};
use crate::pool::WorkerPool;
use pmcts_util::{GpuFault, SimTime};
use std::sync::Arc;

/// Description of a simulated GPU and its cost model.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, for logs and bench output.
    pub name: &'static str,
    /// Number of streaming multiprocessors (14 on Tesla C2050).
    pub sm_count: u32,
    /// SIMD width of a warp (32 on all CUDA hardware of the era).
    pub warp_size: u32,
    /// Upper limit on threads per block (1024 on Fermi).
    pub max_threads_per_block: u32,
    /// Maximum warps resident per SM (48 on Fermi) — used for occupancy.
    pub max_warps_per_sm: u32,
    /// SM clock in Hz (1.15 GHz on C2050).
    pub clock_hz: u64,
    /// Cycles charged per warp per lockstep step (covers move generation,
    /// flip computation and RNG of one playout ply across the warp).
    pub cycles_per_warp_step: u64,
    /// Fixed virtual cost of launching a kernel (driver + dispatch).
    pub launch_overhead: SimTime,
    /// Fixed latency of a host↔device transfer.
    pub transfer_latency: SimTime,
    /// Transfer bandwidth in bytes per nanosecond (≈ GB/s).
    pub transfer_bytes_per_ns: u64,
}

impl DeviceSpec {
    /// The Tesla C2050 installed in TSUBAME 2.0, the paper's test platform.
    ///
    /// Calibration (DESIGN.md §6): 14 SMs at 1.15 GHz. One warp-step (one
    /// playout ply across 32 lanes: move generation, flips, RNG) is charged
    /// 13 500 cycles ≈ 420 cycles per lane, which puts a saturated
    /// full-device leaf launch on mid-game Reversi positions at the paper's
    /// ≈9×10⁵ simulations/second peak (Fig. 5). 15 µs launch overhead
    /// matches Fermi-era driver latency.
    pub fn tesla_c2050() -> Self {
        DeviceSpec {
            name: "Tesla C2050 (simulated)",
            sm_count: 14,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_warps_per_sm: 48,
            clock_hz: 1_150_000_000,
            cycles_per_warp_step: 13_500,
            launch_overhead: SimTime::from_micros(15),
            transfer_latency: SimTime::from_micros(8),
            transfer_bytes_per_ns: 6, // ≈ 6 GB/s effective PCIe 2.0
        }
    }

    /// A degenerate single-lane device: warp size 1, one SM, no overheads.
    ///
    /// With no lockstep and no launch cost, executing a kernel on this spec
    /// is equivalent to running the per-thread programs sequentially — the
    /// test suite uses it to isolate cost-model effects.
    pub fn scalar() -> Self {
        DeviceSpec {
            name: "scalar reference device",
            sm_count: 1,
            warp_size: 1,
            max_threads_per_block: 1 << 20,
            max_warps_per_sm: 1 << 20,
            clock_hz: 1_000_000_000,
            cycles_per_warp_step: 1,
            launch_overhead: SimTime::ZERO,
            transfer_latency: SimTime::ZERO,
            transfer_bytes_per_ns: u64::MAX,
        }
    }

    /// Duration of `cycles` SM cycles on this device.
    #[inline]
    pub fn cycles_to_time(&self, cycles: u64) -> SimTime {
        // ns = cycles / (cycles per ns); computed in f64 to avoid overflow
        // for long kernels, then rounded to the nearest ns.
        let ns = cycles as f64 * 1e9 / self.clock_hz as f64;
        SimTime::from_nanos(ns.round() as u64)
    }

    /// Virtual time to move `bytes` between host and device.
    #[inline]
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        if self.transfer_bytes_per_ns == u64::MAX {
            return SimTime::ZERO;
        }
        self.transfer_latency + SimTime::from_nanos(bytes / self.transfer_bytes_per_ns.max(1))
    }

    /// Fraction of the device's resident-warp capacity used by `config`
    /// (clamped to 1.0).
    pub fn occupancy(&self, config: &LaunchConfig) -> f64 {
        let warps = config.warps_per_block(self) as u64 * config.blocks as u64;
        let capacity = (self.sm_count * self.max_warps_per_sm) as u64;
        (warps as f64 / capacity as f64).min(1.0)
    }
}

/// A simulated GPU: a [`DeviceSpec`] plus launch entry points.
///
/// `Device` is cheap to clone (the spec and worker pool are shared) and is
/// `Send + Sync`; the multi-GPU experiments hand one clone to each MPI rank.
#[derive(Clone, Debug)]
pub struct Device {
    spec: Arc<DeviceSpec>,
    /// Persistent host workers that actually execute kernel lanes — created
    /// once per device (defaulting to available parallelism) and reused by
    /// every synchronous and asynchronous launch.
    pool: Arc<WorkerPool>,
}

impl Device {
    /// Creates a device from a spec, with a worker pool sized to the
    /// machine's available parallelism.
    pub fn new(spec: DeviceSpec) -> Self {
        Device {
            spec: Arc::new(spec),
            pool: Arc::new(WorkerPool::with_available_parallelism()),
        }
    }

    /// Creates a device that executes on an existing shared pool (no new
    /// threads are spawned).
    pub fn new_with_pool(spec: DeviceSpec, pool: Arc<WorkerPool>) -> Self {
        Device {
            spec: Arc::new(spec),
            pool,
        }
    }

    /// The default simulated device (Tesla C2050).
    pub fn c2050() -> Self {
        Self::new(DeviceSpec::tesla_c2050())
    }

    /// Creates `count` identical devices sharing **one** host worker pool
    /// of `host_threads` threads — the fleet-shard shape: each shard owns
    /// its own simulated device (independent virtual clock, launch
    /// overhead, transfer costs) while the real host threads that execute
    /// kernel lanes are a single bounded pool. Virtual results never
    /// depend on the pool size; it only bounds real-machine parallelism.
    pub fn fleet(spec: DeviceSpec, count: usize, host_threads: usize) -> Vec<Device> {
        assert!(count >= 1, "a fleet needs at least one device");
        let pool = Arc::new(WorkerPool::new(host_threads));
        (0..count)
            .map(|_| Device::new_with_pool(spec.clone(), Arc::clone(&pool)))
            .collect()
    }

    /// Replaces the worker pool with a fresh one of `n` threads.
    /// `0` is treated as 1. Virtual timing is unaffected.
    pub fn with_host_threads(mut self, n: usize) -> Self {
        self.pool = Arc::new(WorkerPool::new(n));
        self
    }

    /// Shares an existing worker pool (e.g. one pool across the devices of
    /// every simulated MPI rank, or with root parallelism). Virtual timing
    /// is unaffected.
    pub fn with_worker_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = pool;
        self
    }

    /// The device specification.
    #[inline]
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Number of host threads used for real execution.
    #[inline]
    pub fn host_threads(&self) -> usize {
        self.pool.size()
    }

    /// The device's worker pool.
    #[inline]
    pub fn worker_pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Launches a kernel synchronously and blocks until completion.
    ///
    /// # Panics
    /// Panics if `config` is invalid for this device (zero-sized grid or
    /// more threads per block than the hardware limit).
    pub fn launch<K: Kernel>(&self, kernel: &K, config: LaunchConfig) -> LaunchResult<K::Output> {
        config.validate(&self.spec);
        execute_kernel(kernel, &config, &self.spec, &self.pool)
    }

    /// Launches a kernel asynchronously, returning immediately.
    ///
    /// Mirrors a CUDA stream launch followed by event polling: the host may
    /// keep working (the hybrid CPU/GPU scheme does exactly that) and later
    /// either poll [`PendingLaunch::is_ready`] or block in
    /// [`PendingLaunch::wait`]. The kernel runs on this device's pool; no
    /// thread is created.
    pub fn launch_async<K>(&self, kernel: Arc<K>, config: LaunchConfig) -> PendingLaunch<K::Output>
    where
        K: Kernel + Send + Sync + 'static,
        K::Output: 'static,
    {
        self.launch_async_with_fault(kernel, config, GpuFault::None)
    }

    /// Synchronous launch with a pre-drawn injected fault.
    ///
    /// The kernel executes exactly as in [`launch`](Self::launch) (so every
    /// RNG draw matches the fault-free run); the fault is overlaid on the
    /// result afterwards — see [`crate::executor::apply_fault`].
    pub fn launch_with_fault<K: Kernel>(
        &self,
        kernel: &K,
        config: LaunchConfig,
        fault: GpuFault,
    ) -> LaunchResult<K::Output> {
        let mut result = self.launch(kernel, config);
        apply_fault(&mut result, fault);
        result
    }

    /// Asynchronous launch with a pre-drawn injected fault.
    ///
    /// The fault is overlaid by the pool worker just before completion, so
    /// the handle's result already reflects it.
    pub fn launch_async_with_fault<K>(
        &self,
        kernel: Arc<K>,
        config: LaunchConfig,
        fault: GpuFault,
    ) -> PendingLaunch<K::Output>
    where
        K: Kernel + Send + Sync + 'static,
        K::Output: 'static,
    {
        config.validate(&self.spec);
        let spec = Arc::clone(&self.spec);
        let pool = Arc::clone(&self.pool);
        PendingLaunch::spawn_on(&self.pool, move || {
            let mut result = execute_kernel(&*kernel, &config, &spec, &pool);
            apply_fault(&mut result, fault);
            result
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2050_spec_matches_hardware() {
        let s = DeviceSpec::tesla_c2050();
        assert_eq!(s.sm_count, 14);
        assert_eq!(s.warp_size, 32);
        assert_eq!(s.max_threads_per_block, 1024);
    }

    #[test]
    fn cycles_to_time_uses_clock() {
        let s = DeviceSpec::scalar(); // 1 GHz -> 1 cycle = 1 ns
        assert_eq!(s.cycles_to_time(1000), SimTime::from_micros(1));
        let c = DeviceSpec::tesla_c2050(); // 1.15 GHz
        let t = c.cycles_to_time(1_150_000_000);
        assert_eq!(t, SimTime::from_secs(1));
    }

    #[test]
    fn transfer_time_has_latency_floor() {
        let s = DeviceSpec::tesla_c2050();
        assert_eq!(s.transfer_time(0), s.transfer_latency);
        assert!(s.transfer_time(1 << 20) > s.transfer_latency);
        assert_eq!(DeviceSpec::scalar().transfer_time(1 << 20), SimTime::ZERO);
    }

    #[test]
    fn fault_overlay_leaves_outputs_identical() {
        use crate::kernel::ThreadId;
        struct Id;
        impl crate::kernel::Kernel for Id {
            type ThreadState = ();
            type Output = u32;
            fn init(&self, _tid: ThreadId) {}
            fn step(&self, _s: &mut (), _tid: ThreadId) -> bool {
                true
            }
            fn finish(&self, _s: (), tid: ThreadId) -> u32 {
                tid.global
            }
        }
        let dev = Device::new(DeviceSpec::tesla_c2050()).with_host_threads(2);
        let cfg = LaunchConfig::new(4, 32);
        let clean = dev.launch(&Id, cfg);
        assert_eq!(clean.fault, GpuFault::None);

        let slow = dev.launch_with_fault(&Id, cfg, GpuFault::Slowdown(3));
        assert_eq!(slow.outputs, clean.outputs);
        assert_eq!(slow.fault, GpuFault::Slowdown(3));
        assert_eq!(slow.stats.device_time, clean.stats.device_time * 3);
        assert_eq!(slow.stats.launch_overhead, clean.stats.launch_overhead);
        assert_eq!(slow.stats.readback_time, clean.stats.readback_time);

        let hung = dev.launch_with_fault(&Id, cfg, GpuFault::Hang);
        assert_eq!(hung.outputs, clean.outputs);
        assert_eq!(
            hung.stats, clean.stats,
            "hang leaves accounting to the caller"
        );
        assert_eq!(hung.fault, GpuFault::Hang);

        let aborted = dev
            .launch_async_with_fault(std::sync::Arc::new(Id), cfg, GpuFault::BlockAbort(2))
            .wait();
        assert_eq!(aborted.outputs, clean.outputs);
        assert_eq!(aborted.fault, GpuFault::BlockAbort(2));
    }

    #[test]
    fn occupancy_saturates_at_one() {
        let s = DeviceSpec::tesla_c2050();
        let small = LaunchConfig::new(1, 32);
        let huge = LaunchConfig::new(1024, 1024);
        assert!(s.occupancy(&small) < 0.01);
        assert_eq!(s.occupancy(&huge), 1.0);
    }
}
