//! Launch results and asynchronous launches.
//!
//! [`PendingLaunch`] mirrors the CUDA asynchronous-stream pattern the paper's
//! hybrid scheme depends on (its Fig. 4): the host calls the kernel
//! asynchronously, keeps expanding trees on the CPU, and polls for the "gpu
//! ready event". Here the kernel runs on the device's persistent
//! [`WorkerPool`] — no thread is created per
//! launch; readiness is a flag the worker sets just before finishing.

use crate::pool::WorkerPool;
use crate::stats::KernelStats;
use pmcts_util::GpuFault;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The result of a completed kernel launch.
#[derive(Clone, Debug)]
pub struct LaunchResult<O> {
    /// Per-thread outputs in global-thread order.
    pub outputs: Vec<O>,
    /// Cost and utilisation accounting.
    pub stats: KernelStats,
    /// The fault injected into this launch, if any. On [`GpuFault::Hang`]
    /// and [`GpuFault::BlockAbort`] the outputs (or the aborted block's
    /// slice of them) are present but *void* — it is the caller's response
    /// policy that must discard them; on [`GpuFault::Slowdown`] the stats
    /// already carry the inflated device time.
    pub fault: GpuFault,
}

/// The rendezvous slot a pool worker fills when the launch completes.
struct AsyncSlot<O> {
    result: Mutex<Option<std::thread::Result<LaunchResult<O>>>>,
    ready: AtomicBool,
    done: Condvar,
}

/// A kernel in flight on the simulated device.
///
/// Dropping a `PendingLaunch` without calling [`wait`](Self::wait) detaches
/// the computation (it still completes on the pool, its result is
/// discarded) — the same fire-and-forget semantics as an unsynchronised
/// CUDA stream.
pub struct PendingLaunch<O> {
    slot: Arc<AsyncSlot<O>>,
}

impl<O: Send + 'static> PendingLaunch<O> {
    /// Enqueues `job` on `pool` and returns the handle immediately.
    pub(crate) fn spawn_on<F>(pool: &WorkerPool, job: F) -> Self
    where
        F: FnOnce() -> LaunchResult<O> + Send + 'static,
    {
        let slot = Arc::new(AsyncSlot {
            result: Mutex::new(None),
            ready: AtomicBool::new(false),
            done: Condvar::new(),
        });
        let worker_slot = Arc::clone(&slot);
        pool.submit(move || {
            let result = catch_unwind(AssertUnwindSafe(job));
            *worker_slot.result.lock().expect("async slot poisoned") = Some(result);
            worker_slot.ready.store(true, Ordering::Release);
            worker_slot.done.notify_all();
        });
        PendingLaunch { slot }
    }

    /// Whether the kernel has finished (the "GPU ready event" poll).
    pub fn is_ready(&self) -> bool {
        self.slot.ready.load(Ordering::Acquire)
    }

    /// Blocks until the kernel completes and returns its result.
    ///
    /// # Panics
    /// Re-raises the kernel's panic if it panicked.
    pub fn wait(self) -> LaunchResult<O> {
        let mut guard = self.slot.result.lock().expect("async slot poisoned");
        while guard.is_none() {
            guard = self.slot.done.wait(guard).expect("async slot poisoned");
        }
        match guard.take().expect("result present") {
            Ok(result) => result,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl<O> std::fmt::Debug for PendingLaunch<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingLaunch")
            .field("ready", &self.slot.ready.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::device::{Device, DeviceSpec};
    use crate::kernel::{Kernel, LaunchConfig, ThreadId};
    use std::sync::Arc;

    /// A lane that spins `n` steps then returns its global id.
    struct Spin {
        n: u32,
    }

    impl Kernel for Spin {
        type ThreadState = u32;
        type Output = u32;
        fn init(&self, _tid: ThreadId) -> u32 {
            self.n
        }
        fn step(&self, s: &mut u32, _tid: ThreadId) -> bool {
            *s -= 1;
            *s == 0
        }
        fn finish(&self, _s: u32, tid: ThreadId) -> u32 {
            tid.global
        }
    }

    #[test]
    fn sync_launch_returns_all_outputs() {
        let dev = Device::new(DeviceSpec::tesla_c2050());
        let r = dev.launch(&Spin { n: 3 }, LaunchConfig::new(4, 64));
        assert_eq!(r.outputs.len(), 256);
        assert_eq!(r.outputs[17], 17);
        assert!(r.stats.elapsed() > pmcts_util::SimTime::ZERO);
    }

    #[test]
    fn async_launch_completes_and_matches_sync() {
        let dev = Device::new(DeviceSpec::tesla_c2050());
        let cfg = LaunchConfig::new(8, 32);
        let sync = dev.launch(&Spin { n: 5 }, cfg);
        let pending = dev.launch_async(Arc::new(Spin { n: 5 }), cfg);
        let async_r = pending.wait();
        assert_eq!(sync.outputs, async_r.outputs);
        assert_eq!(sync.stats, async_r.stats);
    }

    #[test]
    fn is_ready_eventually_true() {
        let dev = Device::new(DeviceSpec::tesla_c2050());
        let pending = dev.launch_async(Arc::new(Spin { n: 2 }), LaunchConfig::new(1, 32));
        // Poll; the pool worker must flip the flag.
        let mut spins = 0u64;
        while !pending.is_ready() {
            std::hint::spin_loop();
            spins += 1;
            assert!(spins < 1_000_000_000, "async launch never became ready");
        }
        let r = pending.wait();
        assert_eq!(r.outputs.len(), 32);
    }

    #[test]
    fn dropping_pending_launch_is_safe() {
        let dev = Device::new(DeviceSpec::tesla_c2050());
        let pending = dev.launch_async(Arc::new(Spin { n: 1 }), LaunchConfig::new(1, 32));
        drop(pending); // must not deadlock or panic
    }

    #[test]
    fn many_async_launches_reuse_the_pool() {
        // Regression for the old spawn-per-launch behaviour: a batch of
        // async launches must all complete on a small fixed pool.
        let dev = Device::new(DeviceSpec::tesla_c2050()).with_host_threads(2);
        let kernel = Arc::new(Spin { n: 2 });
        let pending: Vec<_> = (0..32)
            .map(|_| dev.launch_async(Arc::clone(&kernel), LaunchConfig::new(2, 32)))
            .collect();
        for p in pending {
            assert_eq!(p.wait().outputs.len(), 64);
        }
    }
}
