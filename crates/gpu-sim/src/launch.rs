//! Launch results and asynchronous launches.
//!
//! [`PendingLaunch`] mirrors the CUDA asynchronous-stream pattern the paper's
//! hybrid scheme depends on (its Fig. 4): the host calls the kernel
//! asynchronously, keeps expanding trees on the CPU, and polls for the "gpu
//! ready event". Here the kernel runs on a background host thread; readiness
//! is a flag the worker sets just before finishing.

use crate::stats::KernelStats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The result of a completed kernel launch.
#[derive(Clone, Debug)]
pub struct LaunchResult<O> {
    /// Per-thread outputs in global-thread order.
    pub outputs: Vec<O>,
    /// Cost and utilisation accounting.
    pub stats: KernelStats,
}

/// A kernel in flight on the simulated device.
///
/// Dropping a `PendingLaunch` without calling [`wait`](Self::wait) detaches
/// the computation (it still completes, its result is discarded) — the same
/// fire-and-forget semantics as an unsynchronised CUDA stream.
pub struct PendingLaunch<O> {
    handle: Option<JoinHandle<LaunchResult<O>>>,
    ready: Arc<AtomicBool>,
}

impl<O: Send + 'static> PendingLaunch<O> {
    /// Runs `job` on a background thread and returns the handle immediately.
    pub(crate) fn spawn<F>(job: F) -> Self
    where
        F: FnOnce() -> LaunchResult<O> + Send + 'static,
    {
        let ready = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ready);
        let handle = std::thread::spawn(move || {
            let result = job();
            flag.store(true, Ordering::Release);
            result
        });
        PendingLaunch {
            handle: Some(handle),
            ready,
        }
    }

    /// Whether the kernel has finished (the "GPU ready event" poll).
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Blocks until the kernel completes and returns its result.
    ///
    /// # Panics
    /// Panics if the kernel itself panicked, or if called twice.
    pub fn wait(mut self) -> LaunchResult<O> {
        self.handle
            .take()
            .expect("PendingLaunch already waited")
            .join()
            .expect("kernel thread panicked")
    }
}

impl<O> std::fmt::Debug for PendingLaunch<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingLaunch")
            .field("ready", &self.ready.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::device::{Device, DeviceSpec};
    use crate::kernel::{Kernel, LaunchConfig, ThreadId};
    use std::sync::Arc;

    /// A lane that spins `n` steps then returns its global id.
    struct Spin {
        n: u32,
    }

    impl Kernel for Spin {
        type ThreadState = u32;
        type Output = u32;
        fn init(&self, _tid: ThreadId) -> u32 {
            self.n
        }
        fn step(&self, s: &mut u32, _tid: ThreadId) -> bool {
            *s -= 1;
            *s == 0
        }
        fn finish(&self, _s: u32, tid: ThreadId) -> u32 {
            tid.global
        }
    }

    #[test]
    fn sync_launch_returns_all_outputs() {
        let dev = Device::new(DeviceSpec::tesla_c2050());
        let r = dev.launch(&Spin { n: 3 }, LaunchConfig::new(4, 64));
        assert_eq!(r.outputs.len(), 256);
        assert_eq!(r.outputs[17], 17);
        assert!(r.stats.elapsed() > pmcts_util::SimTime::ZERO);
    }

    #[test]
    fn async_launch_completes_and_matches_sync() {
        let dev = Device::new(DeviceSpec::tesla_c2050());
        let cfg = LaunchConfig::new(8, 32);
        let sync = dev.launch(&Spin { n: 5 }, cfg);
        let pending = dev.launch_async(Arc::new(Spin { n: 5 }), cfg);
        let async_r = pending.wait();
        assert_eq!(sync.outputs, async_r.outputs);
        assert_eq!(sync.stats, async_r.stats);
    }

    #[test]
    fn is_ready_eventually_true() {
        let dev = Device::new(DeviceSpec::tesla_c2050());
        let pending = dev.launch_async(Arc::new(Spin { n: 2 }), LaunchConfig::new(1, 32));
        // Poll; the background thread must flip the flag.
        let mut spins = 0u64;
        while !pending.is_ready() {
            std::hint::spin_loop();
            spins += 1;
            assert!(spins < 1_000_000_000, "async launch never became ready");
        }
        let r = pending.wait();
        assert_eq!(r.outputs.len(), 32);
    }

    #[test]
    fn dropping_pending_launch_is_safe() {
        let dev = Device::new(DeviceSpec::tesla_c2050());
        let pending = dev.launch_async(Arc::new(Spin { n: 1 }), LaunchConfig::new(1, 32));
        drop(pending); // must not deadlock or panic
    }
}
