//! The kernel abstraction and launch geometry.
//!
//! A [`Kernel`] is the simulator's analogue of a `__global__` CUDA function,
//! written as a per-thread *state machine*: the executor calls
//! [`Kernel::step`] on every live lane of a warp, once per lockstep step,
//! until all lanes report completion. Expressing the playout as steps (one
//! game ply per step) is what lets the simulator charge warp time by the
//! slowest lane — the divergence behaviour of real SIMD hardware.

use crate::device::DeviceSpec;

/// Identity of a simulated GPU thread within a launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ThreadId {
    /// Block index within the grid.
    pub block: u32,
    /// Thread index within the block.
    pub thread: u32,
    /// Flat global index: `block * threads_per_block + thread`.
    pub global: u32,
}

/// Launch geometry: grid and block dimensions (1-D, as in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl LaunchConfig {
    /// Creates a launch configuration.
    pub fn new(blocks: u32, threads_per_block: u32) -> Self {
        LaunchConfig {
            blocks,
            threads_per_block,
        }
    }

    /// Total threads in the grid.
    #[inline]
    pub fn total_threads(&self) -> u32 {
        self.blocks * self.threads_per_block
    }

    /// Number of warps in each block on `device` (rounded up: a partial
    /// warp occupies a full warp slot, exactly as on hardware).
    #[inline]
    pub fn warps_per_block(&self, device: &DeviceSpec) -> u32 {
        self.threads_per_block.div_ceil(device.warp_size)
    }

    /// Panics if the geometry is invalid for `device`.
    pub fn validate(&self, device: &DeviceSpec) {
        assert!(self.blocks > 0, "launch must have at least one block");
        assert!(
            self.threads_per_block > 0,
            "launch must have at least one thread per block"
        );
        assert!(
            self.threads_per_block <= device.max_threads_per_block,
            "{} threads per block exceeds the device limit of {}",
            self.threads_per_block,
            device.max_threads_per_block
        );
    }
}

/// A per-thread program executed in warp lockstep.
///
/// Implementations are shared (`&self`) across all simulated threads; all
/// per-thread mutable data lives in `ThreadState`. A playout kernel's state
/// is the current game position plus a per-lane RNG; its `step` plays one
/// ply.
pub trait Kernel: Sync {
    /// Mutable per-thread state.
    type ThreadState: Send;
    /// Per-thread result extracted after the lane finishes.
    type Output: Send;

    /// Builds the initial state for thread `tid` (the CUDA "prologue":
    /// reading launch parameters, seeding the per-lane RNG).
    fn init(&self, tid: ThreadId) -> Self::ThreadState;

    /// Advances the thread by one lockstep step. Returns `true` when the
    /// lane has finished; the executor then masks it out while the rest of
    /// the warp keeps stepping.
    fn step(&self, state: &mut Self::ThreadState, tid: ThreadId) -> bool;

    /// Consumes the final state into the lane's output (the CUDA "write to
    /// global memory" epilogue).
    fn finish(&self, state: Self::ThreadState, tid: ThreadId) -> Self::Output;

    /// Size in bytes of one lane's output in device memory; used by callers
    /// to charge the device→host readback transfer. Defaults to 4 bytes
    /// (one `u32` result per simulation, as in the paper's result array).
    fn output_bytes(&self) -> u64 {
        4
    }

    /// Runs one lane start-to-finish and returns its output together with
    /// the number of lockstep steps it took (always ≥ 1).
    ///
    /// Lanes are independent (`step` takes `&self`), so the run-to-completion
    /// engine executes each lane in one tight pass and reconstructs warp
    /// timing analytically from the returned step counts. The default drives
    /// `init`/`step`/`finish`; kernels that know their step count without a
    /// per-step state machine (e.g. a playout kernel: one ply per step) may
    /// override this with a fused loop, but the override **must** return the
    /// exact `(output, steps)` the default would — the lockstep oracle in
    /// [`crate::executor::execute_kernel_lockstep`] checks this.
    fn run_lane(&self, tid: ThreadId) -> (Self::Output, u64) {
        let mut state = self.init(tid);
        let mut steps = 0u64;
        loop {
            steps += 1;
            if self.step(&mut state, tid) {
                return (self.finish(state, tid), steps);
            }
        }
    }

    /// Runs a contiguous group of lanes (the executor passes one warp at a
    /// time) and pushes each lane's `(output, steps)` into `out`, in `tids`
    /// order.
    ///
    /// The default is a scalar loop over [`run_lane`](Self::run_lane).
    /// Kernels whose lanes batch profitably (e.g. bit-parallel multi-lane
    /// playouts) override this, but the override **must** push exactly the
    /// outputs and step counts the default would, in the same order — lane
    /// batching is a wall-clock optimisation that the simulated timing
    /// model never observes.
    fn run_lanes(&self, tids: &[ThreadId], out: &mut Vec<(Self::Output, u64)>) {
        for &tid in tids {
            out.push(self.run_lane(tid));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_warp_counts() {
        let dev = DeviceSpec::tesla_c2050();
        let cfg = LaunchConfig::new(4, 96);
        assert_eq!(cfg.total_threads(), 384);
        assert_eq!(cfg.warps_per_block(&dev), 3);
        // Partial warps round up.
        let cfg = LaunchConfig::new(4, 33);
        assert_eq!(cfg.warps_per_block(&dev), 2);
        let cfg = LaunchConfig::new(4, 1);
        assert_eq!(cfg.warps_per_block(&dev), 1);
    }

    #[test]
    fn validate_accepts_reasonable_configs() {
        let dev = DeviceSpec::tesla_c2050();
        LaunchConfig::new(112, 64).validate(&dev);
        LaunchConfig::new(1, 1024).validate(&dev);
    }

    #[test]
    #[should_panic(expected = "exceeds the device limit")]
    fn validate_rejects_oversized_blocks() {
        LaunchConfig::new(1, 2048).validate(&DeviceSpec::tesla_c2050());
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn validate_rejects_empty_grid() {
        LaunchConfig::new(0, 32).validate(&DeviceSpec::tesla_c2050());
    }
}
