//! Device-resident MCTS tree state: allocator, layout and cost accounting.
//!
//! The block-parallel scheme (and the paper's Fig. 5 ceiling) round-trips
//! every iteration through the host: selection/expansion/backprop run on
//! the CPU, then one launch simulates a single frontier wave. A
//! device-resident tree inverts that: the node pool lives in GPU global
//! memory and a *persistent* kernel runs complete MCTS iterations — UCB
//! descent, expansion, playout, backprop — without returning to the host.
//! The host only uploads the root-state delta once per search and reads
//! back root-child statistics once per launch (DESIGN.md §13).
//!
//! This module holds the device side of that design:
//!
//! * [`DeviceAllocator`] — the device node allocator: a bump pointer over
//!   the preallocated node-pool columns plus a LIFO free list. Slot order
//!   is a pure function of the claim/release sequence, never of thread
//!   timing, so the allocator (like the tree it feeds) is deterministic.
//! * [`node_pool_bytes`] / [`DeviceTreeSpec`] — the resident layout and
//!   the cost constants of the in-kernel tree walk.
//! * [`TreeLaunchTrace`] — analytic divergence accounting for one
//!   persistent launch. Lanes record how many tree steps (UCB levels
//!   descended + the expansion + backprop updates) and playout steps
//!   (plies) they executed; `finish` folds them into a [`KernelStats`]
//!   with the same warp-lockstep / SM-round-robin model as the playout
//!   executor. The crucial difference from per-iteration launches: warp
//!   divergence is settled once over the *sum* of a lane's iterations
//!   (max-of-sums), not once per iteration (sum-of-maxes) — a lane that
//!   finishes a short playout immediately starts its next iteration
//!   instead of idling until the launch drains.
//!
//! The tree *contents* (game states, legal-move slabs, LRU links) are the
//! `pmcts-core` SoA `SearchTree`: the simulator executes kernels on host
//! threads, so "device memory" and the host shadow tree are one
//! allocation, mirrored here only by the allocator and the byte model.

use crate::device::DeviceSpec;
use crate::kernel::LaunchConfig;
use crate::stats::KernelStats;

/// Cost constants of the in-kernel tree walk (DESIGN.md §13).
///
/// Playout plies inside the resident kernel are cheaper than the
/// per-launch playout kernels' calibrated step (`DeviceSpec::
/// cycles_per_warp_step`, 13 500 ≈ 422 cycles/lane): that constant was
/// fitted to the paper's end-to-end Fig. 5 peak and therefore folds the
/// per-launch lane setup — reading the frontier position, seeding the
/// RNG, spilling per-lane game state to Fermi local memory, writing the
/// result array — into every ply. The persistent kernel pays none of
/// that per ply: lane state stays in registers across iterations and
/// results accumulate into the resident node pool, leaving the pure
/// bitboard ALU cost of a ply (≈270 cycles/lane). Tree steps (one UCB
/// child scan or one backprop node update) are a handful of global-memory
/// loads and FMAs per lane (≈75 cycles/lane).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceTreeSpec {
    /// Cycles one warp spends per playout ply (all 32 lanes): pure
    /// move-gen + apply ALU work, no per-launch lane setup.
    pub playout_warp_step_cycles: u64,
    /// Cycles one warp spends per tree step: one UCB level of the descent,
    /// the expansion slot claim, or one backprop node update.
    pub tree_warp_step_cycles: u64,
    /// Bytes read back per root child per launch (4-byte visit count +
    /// 8-byte win sum); the only device→host traffic of a launch.
    pub root_stat_bytes: u64,
}

impl DeviceTreeSpec {
    /// The resident-kernel calibration for the Tesla C2050 (DESIGN.md §13).
    pub fn c2050_resident() -> Self {
        DeviceTreeSpec {
            playout_warp_step_cycles: 8_640,
            tree_warp_step_cycles: 2_400,
            root_stat_bytes: 12,
        }
    }
}

impl Default for DeviceTreeSpec {
    fn default() -> Self {
        Self::c2050_resident()
    }
}

/// Bytes one resident node occupies in the device pool: visits (4) +
/// win sum (8) + parent (4) + child range (4+2) + untried range (4+2) +
/// move code (4) + side-to-move flags (1), padded to an 8-byte stride.
pub const NODE_POOL_BYTES: u64 = 40;

/// Device-memory footprint of a resident pool of `nodes` nodes (the
/// node-pool columns only; child/move slab entries are 4 bytes each and
/// proportional to the branching factor — reported separately by callers
/// that know their game).
pub fn node_pool_bytes(nodes: u64) -> u64 {
    nodes * NODE_POOL_BYTES
}

/// The device-side node allocator: bump pointer + LIFO free list.
///
/// Slot order is deterministic: fresh claims advance the bump pointer in
/// sequence; released slots are reused in strict LIFO order. The searcher
/// mirrors every shadow-tree expansion through this allocator and asserts
/// the live count matches, so host bookkeeping and the modelled device
/// pool can never drift.
#[derive(Clone, Debug)]
pub struct DeviceAllocator {
    capacity: u32,
    bump: u32,
    free: Vec<u32>,
    recycled: u64,
}

impl DeviceAllocator {
    /// An empty allocator over `capacity` slots (`u32::MAX` ≈ unbounded).
    pub fn new(capacity: u32) -> Self {
        DeviceAllocator {
            capacity,
            bump: 0,
            free: Vec::new(),
            recycled: 0,
        }
    }

    /// An allocator adopting an already-populated pool of `len` live nodes
    /// in slots `0..len` (used after a re-root compaction).
    pub fn with_live_prefix(capacity: u32, len: u32) -> Self {
        assert!(len <= capacity, "live prefix exceeds capacity");
        DeviceAllocator {
            capacity,
            bump: len,
            free: Vec::new(),
            recycled: 0,
        }
    }

    /// Allocates the deterministically-next slot: the most recently
    /// released slot if any (LIFO), else the bump pointer. `None` when the
    /// pool is exhausted.
    pub fn alloc(&mut self) -> Option<u32> {
        if let Some(slot) = self.free.pop() {
            return Some(slot);
        }
        if self.bump < self.capacity {
            let slot = self.bump;
            self.bump += 1;
            Some(slot)
        } else {
            None
        }
    }

    /// Returns `slot` to the free list (most recently released is reused
    /// first).
    pub fn release(&mut self, slot: u32) {
        debug_assert!(slot < self.bump, "releasing a never-claimed slot");
        debug_assert!(!self.free.contains(&slot), "double release of slot");
        self.free.push(slot);
    }

    /// Claims a specific slot chosen by the (shadow) tree. Matches the
    /// allocator's own order when the tree allocates sequentially; skipped
    /// slots below a forward jump are parked on the free list so the live
    /// count stays exact. Returns `false` if the slot was already live.
    pub fn claim(&mut self, slot: u32) -> bool {
        if slot >= self.capacity {
            return false;
        }
        if slot == self.bump {
            self.bump += 1;
            return true;
        }
        if slot > self.bump {
            while self.bump < slot {
                self.free.push(self.bump);
                self.bump += 1;
            }
            self.bump += 1;
            return true;
        }
        match self.free.iter().rposition(|&s| s == slot) {
            Some(pos) => {
                self.free.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Records that a live slot was recycled in place (bounded-LRU
    /// eviction immediately reused by the next expansion): the live count
    /// is unchanged, only the recycle counter advances.
    pub fn note_recycled(&mut self, n: u64) {
        self.recycled += n;
    }

    /// Live (claimed, unreleased) slots.
    pub fn live(&self) -> u32 {
        self.bump - self.free.len() as u32
    }

    /// Highest slot ever claimed plus one (pool high-water mark).
    pub fn high_water(&self) -> u32 {
        self.bump
    }

    /// Total slots.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// In-place recycles recorded by [`note_recycled`](Self::note_recycled).
    pub fn recycled(&self) -> u64 {
        self.recycled
    }
}

/// Per-lane step counts of one persistent launch: lane `l` of block `b`
/// holds `(tree_steps, playout_steps)` summed over all iterations the
/// lane ran in the launch.
#[derive(Clone, Debug)]
pub struct TreeLaunchTrace {
    threads_per_block: u32,
    blocks: Vec<Vec<(u64, u64)>>,
}

impl TreeLaunchTrace {
    /// An all-zero trace for `blocks × threads_per_block` lanes.
    pub fn new(blocks: u32, threads_per_block: u32) -> Self {
        TreeLaunchTrace {
            threads_per_block,
            blocks: vec![vec![(0, 0); threads_per_block as usize]; blocks as usize],
        }
    }

    /// Builds a trace from per-block lane rows (each row must have the
    /// launch's `threads_per_block` entries).
    pub fn from_lanes(threads_per_block: u32, blocks: Vec<Vec<(u64, u64)>>) -> Self {
        for row in &blocks {
            assert_eq!(row.len(), threads_per_block as usize, "ragged lane row");
        }
        TreeLaunchTrace {
            threads_per_block,
            blocks,
        }
    }

    /// Adds one lane iteration's step counts.
    pub fn add(&mut self, block: u32, lane: u32, tree_steps: u64, playout_steps: u64) {
        let cell = &mut self.blocks[block as usize][lane as usize];
        cell.0 += tree_steps;
        cell.1 += playout_steps;
    }

    /// Folds the trace into launch statistics under the same model as the
    /// playout executor: warp cost is its slowest lane (here: slowest
    /// summed lane, the persistent kernel's max-of-sums pipelining), an
    /// SM's cycles are the sum of its round-robin-assigned blocks, device
    /// time is the busiest SM. `readback_bytes` prices the root-stat
    /// readback; upload is *not* charged here — the resident tree's only
    /// upload is the per-search root delta, charged by the searcher.
    pub fn finish(
        &self,
        tree: &DeviceTreeSpec,
        dev: &DeviceSpec,
        config: &LaunchConfig,
        readback_bytes: u64,
    ) -> KernelStats {
        let mut per_sm_cycles = vec![0u64; dev.sm_count as usize];
        let mut warp_steps = 0u64;
        let mut lane_steps = 0u64;
        let mut idle_lane_steps = 0u64;

        for (b, lanes) in self.blocks.iter().enumerate() {
            let mut block_cycles = 0u64;
            for warp in lanes.chunks(dev.warp_size as usize) {
                let mut tree_max = 0u64;
                let mut playout_max = 0u64;
                let mut useful = 0u64;
                for &(t, p) in warp {
                    tree_max = tree_max.max(t);
                    playout_max = playout_max.max(p);
                    useful += t + p;
                }
                block_cycles += tree_max * tree.tree_warp_step_cycles
                    + playout_max * tree.playout_warp_step_cycles;
                warp_steps += tree_max + playout_max;
                lane_steps += useful;
                idle_lane_steps += (tree_max + playout_max) * warp.len() as u64 - useful;
            }
            per_sm_cycles[b % dev.sm_count as usize] += block_cycles;
        }

        let device_time = dev.cycles_to_time(per_sm_cycles.iter().copied().max().unwrap_or(0));
        KernelStats {
            threads: config.blocks * config.threads_per_block,
            warps: config.blocks * config.warps_per_block(dev),
            launch_overhead: dev.launch_overhead,
            device_time,
            readback_time: dev.transfer_time(readback_bytes),
            warp_steps,
            lane_steps,
            idle_lane_steps,
            per_sm_cycles,
            occupancy: dev.occupancy(config),
        }
    }

    /// Launch geometry the trace was built for.
    pub fn threads_per_block(&self) -> u32 {
        self.threads_per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_util::SimTime;

    #[test]
    fn allocator_bumps_sequentially() {
        let mut a = DeviceAllocator::new(4);
        assert_eq!(a.alloc(), Some(0));
        assert_eq!(a.alloc(), Some(1));
        assert_eq!(a.alloc(), Some(2));
        assert_eq!(a.alloc(), Some(3));
        assert_eq!(a.alloc(), None, "pool exhausted");
        assert_eq!(a.live(), 4);
        assert_eq!(a.high_water(), 4);
    }

    #[test]
    fn released_slots_are_reused_lifo() {
        let mut a = DeviceAllocator::new(8);
        for _ in 0..5 {
            a.alloc();
        }
        a.release(1);
        a.release(3);
        assert_eq!(a.live(), 3);
        assert_eq!(a.alloc(), Some(3), "most recently released first");
        assert_eq!(a.alloc(), Some(1));
        assert_eq!(a.alloc(), Some(5), "then the bump pointer");
        assert_eq!(a.live(), 6);
    }

    #[test]
    fn claim_follows_the_tree_order() {
        let mut a = DeviceAllocator::new(8);
        assert!(a.claim(0));
        assert!(a.claim(1));
        assert!(!a.claim(1), "double claim rejected");
        // A forward jump parks the skipped slots on the free list.
        assert!(a.claim(4));
        assert_eq!(a.live(), 3);
        assert!(a.claim(3), "skipped slot claimable from the free list");
        assert_eq!(a.live(), 4);
        assert!(!a.claim(100), "beyond capacity");
    }

    #[test]
    fn recycles_keep_live_count_and_advance_counter() {
        let mut a = DeviceAllocator::new(4);
        a.alloc();
        a.alloc();
        a.note_recycled(3);
        assert_eq!(a.live(), 2);
        assert_eq!(a.recycled(), 3);
    }

    #[test]
    fn with_live_prefix_adopts_compacted_pool() {
        let mut a = DeviceAllocator::with_live_prefix(16, 5);
        assert_eq!(a.live(), 5);
        assert_eq!(a.alloc(), Some(5));
    }

    #[test]
    fn node_pool_bytes_scale_linearly() {
        assert_eq!(node_pool_bytes(0), 0);
        assert_eq!(node_pool_bytes(10), 10 * NODE_POOL_BYTES);
    }

    #[test]
    fn trace_settles_divergence_over_summed_lanes() {
        // Two lanes in one warp (scalar spec has warp_size 1; use a wider
        // hand-built spec): lane 0 runs 10+30 steps, lane 1 runs 20+20.
        // The warp pays max(tree)=20? No: maxima are per-category sums.
        let mut dev = DeviceSpec::scalar();
        dev.warp_size = 2;
        dev.sm_count = 2;
        let tree = DeviceTreeSpec {
            playout_warp_step_cycles: 100,
            tree_warp_step_cycles: 10,
            root_stat_bytes: 12,
        };
        let mut trace = TreeLaunchTrace::new(1, 2);
        trace.add(0, 0, 10, 30);
        trace.add(0, 1, 20, 20);
        let cfg = LaunchConfig::new(1, 2);
        let stats = trace.finish(&tree, &dev, &cfg, 24);
        // Warp cost: max tree = 20, max playout = 30.
        assert_eq!(stats.warp_steps, 50);
        assert_eq!(stats.lane_steps, 80);
        assert_eq!(stats.idle_lane_steps, 50 * 2 - 80);
        let cycles = 20 * 10 + 30 * 100;
        assert_eq!(stats.per_sm_cycles, vec![cycles, 0]);
        assert_eq!(stats.device_time, dev.cycles_to_time(cycles));
        assert_eq!(stats.readback_time, dev.transfer_time(24));
    }

    #[test]
    fn max_of_sums_beats_sum_of_maxes() {
        // The pipelining win: two iterations whose per-iteration maxima
        // alternate lanes cost less when settled once over the sums.
        let mut dev = DeviceSpec::scalar();
        dev.warp_size = 2;
        let tree = DeviceTreeSpec {
            playout_warp_step_cycles: 1,
            tree_warp_step_cycles: 0,
            root_stat_bytes: 12,
        };
        // Iteration 1: lane A plays 40, lane B plays 20.
        // Iteration 2: lane A plays 20, lane B plays 40.
        let mut resident = TreeLaunchTrace::new(1, 2);
        resident.add(0, 0, 0, 40);
        resident.add(0, 1, 0, 20);
        resident.add(0, 0, 0, 20);
        resident.add(0, 1, 0, 40);
        let cfg = LaunchConfig::new(1, 2);
        let stats = resident.finish(&tree, &dev, &cfg, 0);
        // max of sums: max(60, 60) = 60 < per-iteration maxima 40 + 40.
        assert_eq!(stats.warp_steps, 60);
        assert_eq!(
            stats.idle_lane_steps, 0,
            "lane never waits at an iteration boundary"
        );
    }

    #[test]
    fn blocks_fold_round_robin_onto_sms() {
        let mut dev = DeviceSpec::scalar();
        dev.sm_count = 2;
        let tree = DeviceTreeSpec {
            playout_warp_step_cycles: 1,
            tree_warp_step_cycles: 1,
            root_stat_bytes: 12,
        };
        let mut trace = TreeLaunchTrace::new(3, 1);
        trace.add(0, 0, 0, 5);
        trace.add(1, 0, 0, 7);
        trace.add(2, 0, 0, 11);
        let cfg = LaunchConfig::new(3, 1);
        let stats = trace.finish(&tree, &dev, &cfg, 0);
        // Blocks 0 and 2 share SM 0 (round robin), block 1 sits on SM 1.
        assert_eq!(stats.per_sm_cycles, vec![16, 7]);
        assert_eq!(stats.device_time, dev.cycles_to_time(16));
        assert_eq!(stats.launch_overhead, dev.launch_overhead);
        assert!(stats.launch_overhead >= SimTime::ZERO);
    }

    #[test]
    fn from_lanes_rejects_ragged_rows() {
        let r = std::panic::catch_unwind(|| {
            TreeLaunchTrace::from_lanes(2, vec![vec![(0, 0)]]);
        });
        assert!(r.is_err());
    }
}
