//! Property-based tests (proptest) over the workspace invariants listed in
//! DESIGN.md §5.

use pmcts::games::reversi::bitboard;
use pmcts::games::{random_playout, Game, MoveBuf, Player, Reversi};
use pmcts::gpu_sim::{Device, DeviceSpec, Kernel, LaunchConfig, ThreadId};
use pmcts::mpi_sim::{NetworkModel, World};
use pmcts::prelude::SimTime;
use pmcts::util::Xoshiro256pp;
use proptest::prelude::*;

/// Strategy: a random plausible Reversi board (not necessarily reachable —
/// the move generator must be correct on any disjoint bitboard pair).
fn arb_board() -> impl Strategy<Value = (u64, u64)> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(occ1, occ2, own)| {
        let occupied = occ1 & occ2;
        (occupied & own, occupied & !own)
    })
}

/// Strategy: a reachable Reversi position, obtained by playing N random
/// plies from the start.
fn arb_position() -> impl Strategy<Value = Reversi> {
    (any::<u64>(), 0u32..55).prop_map(|(seed, plies)| {
        let mut state = Reversi::initial();
        let mut rng = Xoshiro256pp::new(seed);
        for _ in 0..plies {
            match state.random_move(&mut rng) {
                Some(mv) => state.apply(mv),
                None => break,
            }
        }
        state
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn movegen_fast_equals_naive((own, opp) in arb_board()) {
        prop_assert_eq!(
            bitboard::legal_moves_mask(own, opp),
            bitboard::legal_moves_mask_naive(own, opp)
        );
    }

    #[test]
    fn flips_fast_equals_naive((own, opp) in arb_board(), sq in 0u8..64) {
        prop_assume!((own | opp) & (1u64 << sq) == 0);
        prop_assert_eq!(
            bitboard::flips_for_move(own, opp, sq),
            bitboard::flips_for_move_naive(own, opp, sq)
        );
    }

    #[test]
    fn applying_legal_moves_preserves_disc_invariants(state in arb_position(), pick in any::<u64>()) {
        prop_assume!(!state.is_terminal());
        let mut buf = MoveBuf::new();
        state.legal_moves(&mut buf);
        prop_assert!(!buf.is_empty());
        let mv = buf[(pick % buf.len() as u64) as usize];
        let before_total = state.occupancy();
        let mut after = state;
        after.apply(mv);
        if mv.is_pass() {
            prop_assert_eq!(after.occupancy(), before_total);
            prop_assert_eq!(after.black(), state.black());
            prop_assert_eq!(after.white(), state.white());
        } else {
            // Exactly one disc added; flipped discs change colour only.
            prop_assert_eq!(after.occupancy(), before_total + 1);
            prop_assert_eq!(after.black() & after.white(), 0);
            // The mover cannot lose discs.
            let (own_before, _) = state.own_opp();
            let own_after = match state.to_move() {
                Player::P1 => after.black(),
                Player::P2 => after.white(),
            };
            prop_assert!(own_after.count_ones() >= own_before.count_ones() + 2,
                "a legal move adds the placed disc and flips at least one");
        }
        prop_assert_eq!(after.to_move(), state.to_move().opponent());
    }

    #[test]
    fn playouts_terminate_with_consistent_outcome(state in arb_position(), seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::new(seed);
        let result = random_playout(state, &mut rng);
        prop_assert!(result.plies as usize <= Reversi::MAX_GAME_LENGTH);
        let r1 = result.reward_for(Player::P1);
        let r2 = result.reward_for(Player::P2);
        prop_assert!((0.0..=1.0).contains(&r1));
        prop_assert_eq!(r1 + r2, 1.0);
    }

    #[test]
    fn zobrist_is_stable_and_side_sensitive(state in arb_position()) {
        prop_assert_eq!(state.zobrist(), state.zobrist());
        let flipped = Reversi::from_bitboards(state.black(), state.white(), state.to_move().opponent());
        prop_assert_ne!(state.zobrist(), flipped.zobrist());
    }

    #[test]
    fn simtime_arithmetic_is_monotone(a in 0u64..1 << 40, b in 0u64..1 << 40, k in 1u64..1000) {
        let ta = SimTime::from_nanos(a);
        let tb = SimTime::from_nanos(b);
        prop_assert_eq!(ta + tb, tb + ta);
        prop_assert!((ta + tb) >= ta);
        prop_assert_eq!((ta * k) / k, ta);
        prop_assert_eq!(ta.saturating_sub(ta), SimTime::ZERO);
    }

    #[test]
    fn allreduce_equals_sequential_fold(values in prop::collection::vec(0u64..1 << 30, 1..12)) {
        let n = values.len();
        let expected: u64 = values.iter().sum();
        let vals = values.clone();
        let out = World::run(n, NetworkModel::ideal(), move |comm| {
            comm.allreduce(vals[comm.rank()], |a, b| a + b)
        });
        prop_assert!(out.into_iter().all(|v| v == expected));
    }

    #[test]
    fn warp_accounting_identity(threads in 1u32..96, modulus in 1u32..50, warp in prop::sample::select(vec![1u32, 2, 4, 8, 16, 32])) {
        struct Countdown { modulus: u32 }
        impl Kernel for Countdown {
            type ThreadState = u32;
            type Output = u32;
            fn init(&self, tid: ThreadId) -> u32 { tid.global % self.modulus + 1 }
            fn step(&self, s: &mut u32, _t: ThreadId) -> bool { *s -= 1; *s == 0 }
            fn finish(&self, s: u32, _t: ThreadId) -> u32 { s }
        }
        let mut spec = DeviceSpec::scalar();
        spec.warp_size = warp;
        let device = Device::new(spec).with_host_threads(2);
        let r = device.launch(&Countdown { modulus }, LaunchConfig::new(1, threads));
        // Identity: warp time * lanes = useful + idle lane-steps per warp.
        // Summed over warps with exact lane counts:
        prop_assert_eq!(r.outputs.len(), threads as usize);
        prop_assert!(r.stats.lane_steps >= r.outputs.len() as u64);
        // Each lane took (global % modulus)+1 steps; idle+useful must be
        // consistent with warp_steps accounting.
        let expected_useful: u64 = (0..threads).map(|t| (t % modulus + 1) as u64).sum();
        prop_assert_eq!(r.stats.lane_steps, expected_useful);
        // A warp runs as long as its slowest lane.
        let mut expected_warp_steps = 0u64;
        let mut start = 0u32;
        while start < threads {
            let lanes = warp.min(threads - start);
            let max_in_warp = (start..start + lanes).map(|t| (t % modulus + 1) as u64).max().unwrap();
            expected_warp_steps += max_in_warp;
            start += lanes;
        }
        prop_assert_eq!(r.stats.warp_steps, expected_warp_steps);
    }
}
