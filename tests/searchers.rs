//! Cross-crate integration tests: every parallelization scheme, driven
//! through the `pmcts` facade, must search correctly and deterministically.

use pmcts::prelude::*;

fn all_searchers(seed: u64) -> Vec<Box<dyn Searcher<Reversi>>> {
    let cfg = MctsConfig::default().with_seed(seed);
    vec![
        Box::new(SequentialSearcher::<Reversi>::new(cfg.clone())),
        Box::new(LeafParallelSearcher::<Reversi>::new(
            cfg.clone(),
            Device::c2050(),
            LaunchConfig::new(4, 32),
        )),
        Box::new(BlockParallelSearcher::<Reversi>::new(
            cfg.clone(),
            Device::c2050(),
            LaunchConfig::new(4, 32),
        )),
        Box::new(RootParallelSearcher::<Reversi>::new(cfg.clone(), 4)),
        Box::new(TreeParallelSearcher::<Reversi>::new(cfg.clone(), 4)),
        Box::new(HybridSearcher::<Reversi>::new(
            cfg.clone(),
            Device::c2050(),
            LaunchConfig::new(4, 32),
        )),
        Box::new(MultiGpuSearcher::<Reversi>::new(
            cfg,
            2,
            DeviceSpec::tesla_c2050(),
            LaunchConfig::new(4, 32),
            pmcts::mpi_sim::NetworkModel::infiniband(),
        )),
    ]
}

#[test]
fn every_scheme_returns_a_legal_opening_move() {
    use pmcts::games::{Game, MoveBuf};
    let state = Reversi::initial();
    let mut legal = MoveBuf::new();
    state.legal_moves(&mut legal);
    for mut searcher in all_searchers(1) {
        let report = searcher.search(state, SearchBudget::Iterations(10));
        let mv = report
            .best_move
            .unwrap_or_else(|| panic!("{} returned no move", searcher.name()));
        assert!(
            legal.contains(&mv),
            "{} chose illegal move {mv}",
            searcher.name()
        );
        assert!(report.simulations > 0, "{} did no work", searcher.name());
    }
}

#[test]
fn every_scheme_charges_virtual_time() {
    for mut searcher in all_searchers(2) {
        let report = searcher.search(Reversi::initial(), SearchBudget::Iterations(5));
        assert!(
            report.elapsed > SimTime::ZERO,
            "{} charged no virtual time",
            searcher.name()
        );
    }
}

#[test]
fn deterministic_schemes_reproduce_exactly() {
    // All schemes except tree parallelism (inherently racy) must reproduce
    // bit-identically from the same seed.
    let deterministic = |seed: u64| {
        let cfg = MctsConfig::default().with_seed(seed);
        let searchers: Vec<Box<dyn Searcher<Reversi>>> = vec![
            Box::new(SequentialSearcher::<Reversi>::new(cfg.clone())),
            Box::new(LeafParallelSearcher::<Reversi>::new(
                cfg.clone(),
                Device::c2050(),
                LaunchConfig::new(4, 32),
            )),
            Box::new(BlockParallelSearcher::<Reversi>::new(
                cfg.clone(),
                Device::c2050(),
                LaunchConfig::new(4, 32),
            )),
            Box::new(RootParallelSearcher::<Reversi>::new(cfg.clone(), 4)),
            Box::new(HybridSearcher::<Reversi>::new(
                cfg.clone(),
                Device::c2050(),
                LaunchConfig::new(4, 32),
            )),
            Box::new(MultiGpuSearcher::<Reversi>::new(
                cfg,
                2,
                DeviceSpec::tesla_c2050(),
                LaunchConfig::new(4, 32),
                pmcts::mpi_sim::NetworkModel::infiniband(),
            )),
        ];
        searchers
    };
    for (mut a, mut b) in deterministic(77).into_iter().zip(deterministic(77)) {
        let ra = a.search(Reversi::initial(), SearchBudget::Iterations(6));
        let rb = b.search(Reversi::initial(), SearchBudget::Iterations(6));
        assert_eq!(
            ra.root_stats,
            rb.root_stats,
            "{} not reproducible",
            a.name()
        );
        assert_eq!(ra.simulations, rb.simulations);
        assert_eq!(ra.elapsed, rb.elapsed);
    }
}

#[test]
fn every_scheme_solves_tictactoe_tactics() {
    use pmcts::games::TicTacToe;
    // X to move: completing the top row at cell 2 wins immediately.
    let win = TicTacToe::parse("XX. OO. ...", Player::P1).unwrap();
    let cfg = MctsConfig::default().with_seed(5);
    let mut searchers: Vec<Box<dyn Searcher<TicTacToe>>> = vec![
        Box::new(SequentialSearcher::<TicTacToe>::new(cfg.clone())),
        Box::new(LeafParallelSearcher::<TicTacToe>::new(
            cfg.clone(),
            Device::c2050(),
            LaunchConfig::new(2, 32),
        )),
        Box::new(BlockParallelSearcher::<TicTacToe>::new(
            cfg.clone(),
            Device::c2050(),
            LaunchConfig::new(2, 32),
        )),
        Box::new(RootParallelSearcher::<TicTacToe>::new(cfg.clone(), 2)),
        Box::new(TreeParallelSearcher::<TicTacToe>::new(cfg.clone(), 2)),
        Box::new(HybridSearcher::<TicTacToe>::new(
            cfg,
            Device::c2050(),
            LaunchConfig::new(2, 32),
        )),
    ];
    for searcher in searchers.iter_mut() {
        let budget = SearchBudget::Iterations(60);
        let report = searcher.search(win, budget);
        assert_eq!(
            report.best_move,
            Some(2),
            "{} failed to take the winning move",
            searcher.name()
        );
    }
}

#[test]
fn longer_budgets_build_bigger_trees() {
    let cfg = MctsConfig::default().with_seed(6);
    let mut s = SequentialSearcher::<Reversi>::new(cfg.clone());
    let small = s.search(Reversi::initial(), SearchBudget::Iterations(50));
    let mut s = SequentialSearcher::<Reversi>::new(cfg);
    let large = s.search(Reversi::initial(), SearchBudget::Iterations(2_000));
    assert!(large.tree_nodes > small.tree_nodes);
    assert!(large.max_depth >= small.max_depth);
}
