//! Baseline-player strength ordering and facade-level sanity checks.

use pmcts::core::arena::MatchSeries;
use pmcts::core::player::{GreedyPlayer, RandomPlayer};
use pmcts::prelude::*;

#[test]
fn greedy_beats_random_at_reversi() {
    // Greedy disc-maximisation is a weak heuristic but clearly above
    // uniform random over enough games.
    let result = MatchSeries::<Reversi>::run(
        40,
        |g| Box::new(GreedyPlayer::new(g)),
        |g| Box::new(RandomPlayer::new(500 + g)),
    );
    assert!(
        result.win_ratio() > 0.55,
        "greedy vs random only {:.2} ({:?})",
        result.win_ratio(),
        result.winloss
    );
}

#[test]
fn mcts_beats_greedy_at_reversi() {
    // The strength ladder: MCTS > greedy ( > random, tested above).
    let result = MatchSeries::<Reversi>::run(
        10,
        |g| {
            Box::new(MctsPlayer::new(
                SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(g)),
                SearchBudget::Iterations(800),
            ))
        },
        |g| Box::new(GreedyPlayer::new(700 + g)),
    );
    assert!(
        result.win_ratio() > 0.6,
        "MCTS vs greedy only {:.2} ({:?})",
        result.win_ratio(),
        result.winloss
    );
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-and-run check that the `pmcts` facade exposes the full API
    // the README advertises.
    use pmcts::gpu_sim::DeviceSpec;
    use pmcts::mpi_sim::NetworkModel;
    use pmcts::util::{Histogram, SimTime, WinLoss};

    let _ = DeviceSpec::tesla_c2050();
    let _ = NetworkModel::infiniband();
    let _ = SimTime::from_millis(1);
    let _ = WinLoss::new();
    let mut h = Histogram::new(4);
    h.record(1);
    assert_eq!(h.count(), 1);

    let report = SequentialSearcher::<Reversi>::new(MctsConfig::default())
        .search(Reversi::initial(), SearchBudget::Iterations(5));
    assert_eq!(report.simulations, 5);
}

#[test]
fn persistent_searcher_tracks_a_whole_game() {
    // Tree reuse must stay consistent over a full game against a searcher
    // opponent (exercises re-rooting through passes and long games).
    use pmcts::games::Game;
    let mut reuse = PersistentSearcher::<Reversi>::new(MctsConfig::default().with_seed(9));
    let mut opp = SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(10));
    let mut state = Reversi::initial();
    let mut plies = 0;
    while !state.is_terminal() {
        let report = match state.to_move() {
            Player::P1 => reuse.search(state, SearchBudget::Iterations(60)),
            Player::P2 => opp.search(state, SearchBudget::Iterations(60)),
        };
        state.apply(report.best_move.expect("non-terminal"));
        plies += 1;
        assert!(plies <= Reversi::MAX_GAME_LENGTH);
    }
    assert!(state.outcome().is_some());
}

#[test]
fn elo_and_win_ratio_roundtrip_through_analysis() {
    use pmcts::core::analysis::{elo_diff, expected_score};
    let mut tally = pmcts::util::WinLoss::new();
    for _ in 0..3 {
        tally.record_score(1);
    }
    tally.record_score(-1);
    let elo = elo_diff(tally.win_ratio()); // 0.75 -> ~ +191
    assert!((expected_score(elo) - 0.75).abs() < 1e-9);
}
