//! Property tests on the MCTS search tree: structural invariants must hold
//! under arbitrary interleavings of select/expand/backprop.

use pmcts::core::tree::{merge_root_stats, RootStat, SearchTree};
use pmcts::games::{Game, Reversi};
use pmcts::util::Xoshiro256pp;
use proptest::prelude::*;

/// Runs `iters` MCTS-shaped operations with batch sizes from `batches`,
/// returning the tree and total simulation count.
fn grow(seed: u64, iters: usize, batches: &[u64]) -> (SearchTree<Reversi>, u64) {
    let mut tree = SearchTree::new(Reversi::initial());
    let mut rng = Xoshiro256pp::new(seed);
    let mut total = 0u64;
    for i in 0..iters {
        let id = tree.select(1.4);
        let node = if !tree.fully_expanded(id) {
            tree.expand(id, &mut rng)
        } else {
            id
        };
        let count = batches[i % batches.len()].max(1);
        // Synthetic reward: anything in [0, count].
        let wins = (i as u64 * 7 % (count + 1)) as f64;
        tree.backprop(node, wins, count);
        total += count;
    }
    (tree, total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tree_invariants_hold_under_random_growth(
        seed in any::<u64>(),
        iters in 1usize..120,
        batches in prop::collection::vec(1u64..64, 1..4),
    ) {
        let (tree, total) = grow(seed, iters, &batches);

        // Root sees every simulation.
        prop_assert_eq!(tree.visits(tree.root()), total);

        for id in 0..tree.len() as u32 {
            // Reward never exceeds visits.
            prop_assert!(tree.wins(id) >= 0.0);
            prop_assert!(tree.wins(id) <= tree.visits(id) as f64 + 1e-9);
            // Children were all reached through this node.
            let child_visits: u64 = tree.children(id).iter().map(|&c| tree.visits(c)).sum();
            prop_assert!(child_visits <= tree.visits(id),
                "node {} visits {} < children total {}", id, tree.visits(id), child_visits);
            for &c in tree.children(id) {
                prop_assert_eq!(tree.parent(c), Some(id));
                prop_assert_eq!(tree.depth(c), tree.depth(id) + 1);
                prop_assert!(tree.move_into(c).is_some());
            }
        }

        // max_depth matches the actual deepest node.
        let deepest = (0..tree.len() as u32).map(|i| tree.depth(i)).max().unwrap();
        prop_assert_eq!(tree.max_depth(), deepest);
    }

    #[test]
    fn root_stats_sum_matches_root_visits(seed in any::<u64>(), iters in 1usize..100) {
        let (tree, total) = grow(seed, iters, &[1]);
        let sum: u64 = tree.root_stats().iter().map(|s| s.visits).sum();
        prop_assert_eq!(sum, total);
    }

    #[test]
    fn merging_stats_preserves_totals(
        visits in prop::collection::vec((0u8..64, 0u64..1000), 0..20),
    ) {
        // Split arbitrary per-move tallies into two halves; the merge of
        // the halves must preserve per-move and global totals.
        let stats: Vec<RootStat<u8>> = visits
            .iter()
            .map(|&(mv, v)| RootStat { mv, visits: v, wins: v as f64 / 2.0 })
            .collect();
        let mid = stats.len() / 2;
        let merged = merge_root_stats(&[stats[..mid].to_vec(), stats[mid..].to_vec()]);
        let total_before: u64 = stats.iter().map(|s| s.visits).sum();
        let total_after: u64 = merged.iter().map(|s| s.visits).sum();
        prop_assert_eq!(total_before, total_after);
        // No duplicate moves after merging.
        let mut moves: Vec<u8> = merged.iter().map(|s| s.mv).collect();
        moves.sort_unstable();
        moves.dedup();
        prop_assert_eq!(moves.len(), merged.len());
    }

    #[test]
    fn merge_is_order_insensitive_in_totals(
        a in prop::collection::vec((0u8..8, 1u64..100), 0..8),
        b in prop::collection::vec((0u8..8, 1u64..100), 0..8),
    ) {
        let to_stats = |v: &[(u8, u64)]| -> Vec<RootStat<u8>> {
            v.iter().map(|&(mv, n)| RootStat { mv, visits: n, wins: 0.0 }).collect()
        };
        let ab = merge_root_stats(&[to_stats(&a), to_stats(&b)]);
        let ba = merge_root_stats(&[to_stats(&b), to_stats(&a)]);
        let total = |m: &[RootStat<u8>]| -> u64 { m.iter().map(|s| s.visits).sum() };
        prop_assert_eq!(total(&ab), total(&ba));
        for s in &ab {
            let other = ba.iter().find(|o| o.mv == s.mv).expect("move present both ways");
            prop_assert_eq!(other.visits, s.visits);
        }
    }
}
