//! Playing-strength integration tests: the ordering claims of the paper's
//! evaluation must hold in miniature on the simulator.
//!
//! All tests here are deterministic: the searchers, the arena and the
//! virtual clocks are all seeded, so results are fixed — these are pinned
//! regression checks, not flaky statistics.

use pmcts::core::arena::MatchSeries;
use pmcts::prelude::*;

const MOVE_BUDGET: SearchBudget = SearchBudget::VirtualTime(SimTime::from_millis(5));

#[test]
fn mcts_crushes_random_at_reversi() {
    let result = MatchSeries::<Reversi>::run(
        6,
        |g| {
            Box::new(MctsPlayer::new(
                SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(g)),
                SearchBudget::Iterations(400),
            ))
        },
        |g| Box::new(pmcts::core::player::RandomPlayer::new(900 + g)),
    );
    assert!(
        result.winloss.wins >= 5,
        "sequential MCTS should dominate random: {:?}",
        result.winloss
    );
}

#[test]
fn gpu_block_parallel_beats_random_everywhere() {
    let result = MatchSeries::<Connect4>::run(
        6,
        |g| {
            Box::new(MctsPlayer::new(
                BlockParallelSearcher::<Connect4>::new(
                    MctsConfig::default().with_seed(g),
                    Device::c2050(),
                    LaunchConfig::new(8, 32),
                ),
                MOVE_BUDGET,
            ))
        },
        |g| Box::new(pmcts::core::player::RandomPlayer::new(700 + g)),
    );
    assert!(
        result.winloss.wins >= 5,
        "block-parallel should dominate random at connect4: {:?}",
        result.winloss
    );
}

#[test]
fn block_parallel_outperforms_leaf_parallel_at_equal_budget() {
    // The paper's central claim (Fig. 6): with the same GPU resources and
    // time, many trees (block) beat one tree with huge batches (leaf).
    // 1024 threads each: leaf = 16x64 one tree, block = 32 trees x 32.
    let games = 6;
    let result = MatchSeries::<Reversi>::run(
        games,
        |g| {
            Box::new(MctsPlayer::new(
                BlockParallelSearcher::<Reversi>::new(
                    MctsConfig::default().with_seed(g),
                    Device::c2050(),
                    LaunchConfig::new(32, 32),
                ),
                MOVE_BUDGET,
            ))
        },
        |g| {
            Box::new(MctsPlayer::new(
                LeafParallelSearcher::<Reversi>::new(
                    MctsConfig::default().with_seed(g.wrapping_add(300)),
                    Device::c2050(),
                    LaunchConfig::new(16, 64),
                ),
                MOVE_BUDGET,
            ))
        },
    );
    assert!(
        result.win_ratio() >= 0.5,
        "block-parallel should not lose to leaf-parallel: ratio {} ({:?})",
        result.win_ratio(),
        result.winloss
    );
}

#[test]
fn hybrid_grows_deeper_trees_than_gpu_only_in_matches() {
    let launch = LaunchConfig::new(16, 32);
    let budget = SearchBudget::VirtualTime(SimTime::from_millis(10));
    let hybrid = MatchSeries::<Reversi>::run(
        2,
        |g| {
            Box::new(MctsPlayer::new(
                HybridSearcher::<Reversi>::new(
                    MctsConfig::default().with_seed(g),
                    Device::c2050(),
                    launch,
                ),
                budget,
            ))
        },
        |g| Box::new(pmcts::core::player::RandomPlayer::new(g)),
    );
    let gpu_only = MatchSeries::<Reversi>::run(
        2,
        |g| {
            Box::new(MctsPlayer::new(
                BlockParallelSearcher::<Reversi>::new(
                    MctsConfig::default().with_seed(g),
                    Device::c2050(),
                    launch,
                ),
                budget,
            ))
        },
        |g| Box::new(pmcts::core::player::RandomPlayer::new(g)),
    );
    let mean = |r: &pmcts::core::arena::SeriesResult| {
        let steps = &r.depth_by_step;
        steps.iter().map(|s| s.mean()).sum::<f64>() / steps.len().max(1) as f64
    };
    assert!(
        mean(&hybrid) > mean(&gpu_only),
        "hybrid mean depth {} should exceed gpu-only {}",
        mean(&hybrid),
        mean(&gpu_only)
    );
}

#[test]
fn more_root_parallel_threads_help() {
    // Root parallelism with 8 trees should beat 1 tree at the same
    // per-thread budget (paper refs [3][4]).
    let result = MatchSeries::<Reversi>::run(
        6,
        |g| {
            Box::new(MctsPlayer::new(
                RootParallelSearcher::<Reversi>::new(MctsConfig::default().with_seed(g), 8),
                MOVE_BUDGET,
            ))
        },
        |g| {
            Box::new(MctsPlayer::new(
                SequentialSearcher::<Reversi>::new(
                    MctsConfig::default().with_seed(g.wrapping_add(40)),
                ),
                MOVE_BUDGET,
            ))
        },
    );
    assert!(
        result.win_ratio() >= 0.5,
        "8 root-parallel threads should not lose to 1: {:?}",
        result.winloss
    );
}

#[test]
fn match_traces_have_sane_shapes() {
    let result = MatchSeries::<Reversi>::run(
        2,
        |g| Box::new(pmcts::core::player::RandomPlayer::new(g)),
        |g| Box::new(pmcts::core::player::RandomPlayer::new(50 + g)),
    );
    assert_eq!(result.games, 2);
    // Reversi games are 50+ plies: the trace must cover them.
    assert!(result.score_by_step.len() >= 50);
    // Early steps contain every game.
    assert_eq!(result.score_by_step[0].count(), 2);
    // Final mean score equals the recorded per-game scores' mean.
    assert!(result.mean_score.count() == 2);
}
