//! `pmcts` — facade crate for the workspace.
//!
//! Re-exports the full public API: game engines (`games`), the simulated
//! GPU (`gpu_sim`) and MPI (`mpi_sim`) substrates, shared utilities
//! (`util`) and the MCTS searchers (`core` / the [`prelude`]).
//!
//! See the repository README for a tour and `examples/` for runnable
//! programs.

pub use pmcts_core as core;
pub use pmcts_games as games;
pub use pmcts_gpu_sim as gpu_sim;
pub use pmcts_mpi_sim as mpi_sim;
pub use pmcts_util as util;

pub use pmcts_core::prelude;
