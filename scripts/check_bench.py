#!/usr/bin/env python3
"""Validate bench artifacts (CI gate, also usable locally).

Usage:
    scripts/check_bench.py [--baseline FILE] [--tolerance X] FILE [FILE ...]
        Validate each artifact; the check set is chosen by file name:
          profile.json           phase ledger + wall-clock fields
          BENCH_throughput.json  engine speedup gate (>= 1.5x vs lockstep),
                                 tree_ops layout records (SoA vs AoS, equal
                                 checksums, select speedup gate), bounded
                                 LRU recycling records (live nodes <= cap,
                                 eviction + transposition traffic, equal
                                 rerun checksums, steady state >= 1.0x vs
                                 unbounded), device-resident tree gate
                                 (>= 1.5x virtual sims/s vs block_parallel
                                 on the same budget), playout_lanes records
                                 (widths 1/4/8, per-record rerun checksums
                                 equal, all widths bit-identical to each
                                 other, lanes-8 >= 2.0x the scalar
                                 cpu_playouts record), host_phases pairs,
                                 and — with --baseline — a no-regression
                                 gate on the sequential search record's
                                 playouts_per_sec
          fault_matrix.json      every cell degraded gracefully; the
                                 leading roster meta-record names every
                                 scheme and fault class and the grid must
                                 cover it exactly (each class x scheme
                                 once, in roster order)
          fault_matrix_hex11.json  same matrix on Hex 11x11
          frontier.json          batch-width x scheme frontier: per-cell
                                 phase ledgers exact, arena win ratios in
                                 [0, 1], and at every width >= 64 WU-UCT
                                 must match block-parallel strength
                                 (win_ratio >= block_parallel's) while
                                 keeping virtual throughput within 10%
          serve.json             multi-session serving: per-move phase
                                 ledgers exact, sessions-per-launch > 1,
                                 batched speedup gate (>= 1.5x vs solo),
                                 latency percentiles present and ordered,
                                 p99 within the per-move deadline slack
          fleet.json             fleet serving: per-scenario admission
                                 accounting exact (offered = admitted +
                                 rejected, shard placements sum to
                                 admitted), p50 <= p99 <= p999, rejects
                                 only when offered load exceeds capacity,
                                 goodput > 0 under overload, dead shards
                                 re-place their sessions, aggregate
                                 throughput gate vs the single-device
                                 baseline (>= devices/2 x)
          divergence_report.txt  per-phase efficiency table parses

    --baseline FILE   committed BENCH_throughput.json to compare against
    --tolerance X     new sequential playouts_per_sec must be >= X * baseline
                      (default 0.75: CI and the baseline machine differ, so
                      only a large drop is a credible layout regression;
                      tighten locally when comparing runs on one machine)

    scripts/check_bench.py --canon FILE
        Print the file's canonical form to stdout: JSON with the
        wall-clock-dependent fields (wall_ns, playouts_per_sec) stripped
        — recursively, so nested records (e.g. per-shard sub-records in
        fleet.json) are stripped too — and keys sorted. Two runs of the
        same experiment with the same seed must produce identical
        canonical forms — diff them.

Exits non-zero with a message on the first failed check.
"""

import json
import os
import re
import sys

PHASE_FIELDS = [
    "select_ns",
    "expand_ns",
    "queue_ns",
    "upload_ns",
    "kernel_ns",
    "readback_ns",
    "merge_ns",
]
FAULT_FIELDS = [
    "faults_injected",
    "faults_retried",
    "faults_degraded",
    "faults_excluded",
]
WALL_FIELDS = ["wall_ns", "playouts_per_sec"]
MIN_ENGINE_SPEEDUP = 1.5
# The device-resident tree must beat host-driven block parallelism in
# *virtual* simulations/second at the same grid and iteration budget
# (committed artifact shows ~2x; 1.5 is the acceptance line). Virtual
# rates come from the cost models, so this gate is machine-independent.
MIN_DEVICE_TREE_SPEEDUP = 1.5
# The SoA layout must beat the AoS baseline on the cold-cache selection
# sweep by a clear margin (committed artifact shows ~1.8x; the gate leaves
# headroom for noisy CI runners).
MIN_TREE_OPS_SELECT_SPEEDUP = 1.3
TREE_OPS_FIELDS = [
    "layout",
    "nodes",
    "select_ops",
    "expand_ops",
    "backprop_ops",
    "select_wall_ns",
    "expand_wall_ns",
    "backprop_wall_ns",
    "select_ops_per_sec",
    "expand_ops_per_sec",
    "backprop_ops_per_sec",
    "checksum",
]
HOST_PHASE_FIELDS = [
    "scheme",
    "layout",
    "blocks",
    "iters",
    "tree_nodes",
    "wall_ns",
    "iters_per_sec",
]
TREE_OPS_SUMMARY_FIELDS = [
    "tree_ops_select_speedup_vs_aos",
    "tree_ops_expand_speedup_vs_aos",
    "tree_ops_backprop_speedup_vs_aos",
]
# Steady-state recycling at cap must hold at least unbounded throughput:
# the capped arena is cache-resident while the unbounded tree keeps
# growing, so eviction + transposition bookkeeping has to pay for itself
# (committed artifact shows ~1.3x; the 1.0 floor is the acceptance line).
MIN_BOUNDED_STEADY_VS_UNBOUNDED = 1.0
BOUNDED_TREE_OPS_FIELDS = [
    "cap",
    "nodes",
    "iters",
    "wall_ns",
    "iters_per_sec",
    "window_a_iters_per_sec",
    "window_b_iters_per_sec",
    "steady_window_ratio",
    "evictions",
    "tt_hits",
    "tt_recovered_visits",
    "tt_drops",
    "tt_occupied",
    "checksum",
    "checksum_rerun",
]
# The 8-wide lane batch must clearly beat the scalar playout loop on the
# identical workload (committed artifact shows ~4.4x from the bit-parallel
# Reversi kernels + skipped host-only Zobrist upkeep; 2.0 is the
# acceptance line, leaving headroom for noisy CI runners).
MIN_PLAYOUT_LANES_SPEEDUP = 2.0
PLAYOUT_LANES_WIDTHS = [1, 4, 8]
PLAYOUT_LANES_FIELDS = [
    "lanes",
    "playouts",
    "plies",
    "wall_ns",
    "playouts_per_sec",
    "plies_per_sec",
    "checksum",
    "checksum_rerun",
]
DEFAULT_BASELINE_TOLERANCE = 0.75


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_phase_ledger(rec, where):
    for f in PHASE_FIELDS + FAULT_FIELDS + ["scheme", "elapsed_ns"]:
        if f not in rec:
            fail(f"{where}: missing field {f!r}")
    phase_sum = sum(rec[f] for f in PHASE_FIELDS)
    if phase_sum != rec["elapsed_ns"]:
        fail(
            f"{where}: phase sum {phase_sum} != elapsed_ns {rec['elapsed_ns']}"
            " (exact identity required)"
        )


def check_profile(path):
    data = json.load(open(path))
    if not data:
        fail(f"{path}: no records")
    for i, rec in enumerate(data):
        where = f"{path}[{i}] ({rec.get('scheme', '?')})"
        check_phase_ledger(rec, where)
        for f in WALL_FIELDS:
            if f not in rec:
                fail(f"{where}: missing wall-clock field {f!r}")
        # The profile runs no fault plan: all counters must be zero.
        for f in FAULT_FIELDS:
            if rec[f] != 0:
                fail(f"{where}: {f} = {rec[f]} but no faults were injected")
    print(f"check_bench: OK: {path}: {len(data)} records, ledger exact")


def check_tree_ops(path, data, summary):
    """The SoA-vs-AoS layout records: both layouts present, structurally
    complete, provably equivalent (equal checksums over identical trees),
    and the selection sweep faster on SoA by the gate margin."""
    recs = {r.get("layout"): r for r in data if r.get("record") == "tree_ops"}
    for layout in ("soa", "aos"):
        if layout not in recs:
            fail(f"{path}: missing tree_ops record for layout {layout!r}")
        for f in TREE_OPS_FIELDS:
            if f not in recs[layout]:
                fail(f"{path}: tree_ops[{layout}]: missing field {f!r}")
        for f in TREE_OPS_FIELDS:
            if f.endswith("_ops_per_sec") and recs[layout][f] <= 0:
                fail(f"{path}: tree_ops[{layout}]: {f} not positive")
    for f in ("nodes", "select_ops", "expand_ops", "backprop_ops", "checksum"):
        if recs["soa"][f] != recs["aos"][f]:
            fail(
                f"{path}: tree_ops layouts diverge on {f!r}:"
                f" soa={recs['soa'][f]} aos={recs['aos'][f]}"
                " (the layouts must run the identical workload)"
            )
    for f in TREE_OPS_SUMMARY_FIELDS:
        if f not in summary:
            fail(f"{path}: summary lacks {f!r}")
    sel = summary["tree_ops_select_speedup_vs_aos"]
    if sel < MIN_TREE_OPS_SELECT_SPEEDUP:
        fail(
            f"{path}: SoA select sweep only {sel:.2f}x vs AoS"
            f" (gate: >= {MIN_TREE_OPS_SELECT_SPEEDUP}x)"
        )
    return sel


def check_bounded_tree_ops(path, data, summary):
    """The bounded-tree recycling records: a capacity-capped search must
    settle at the cap (live nodes <= cap with real eviction and
    transposition traffic), replay bit-identically (equal checksums across
    the two passes), and hold steady-state throughput at or above the
    unbounded reference."""
    recs = {r.get("layout"): r for r in data if r.get("record") == "tree_ops"}
    for layout in ("bounded_lru", "unbounded_ref"):
        if layout not in recs:
            fail(f"{path}: missing tree_ops record for layout {layout!r}")
    bounded = recs["bounded_lru"]
    for f in BOUNDED_TREE_OPS_FIELDS:
        if f not in bounded:
            fail(f"{path}: tree_ops[bounded_lru]: missing field {f!r}")
    for f in ("nodes", "iters", "wall_ns", "iters_per_sec", "checksum"):
        if f not in recs["unbounded_ref"]:
            fail(f"{path}: tree_ops[unbounded_ref]: missing field {f!r}")
    if bounded["checksum"] != bounded["checksum_rerun"]:
        fail(
            f"{path}: bounded recycling nondeterministic: checksum"
            f" {bounded['checksum']} != rerun {bounded['checksum_rerun']}"
        )
    if bounded["nodes"] > bounded["cap"]:
        fail(
            f"{path}: bounded tree holds {bounded['nodes']} live nodes"
            f" over its cap {bounded['cap']}"
        )
    for f in ("evictions", "tt_hits", "tt_recovered_visits"):
        if bounded[f] <= 0:
            fail(
                f"{path}: tree_ops[bounded_lru]: {f} = {bounded[f]}"
                " (the capped run must actually recycle)"
            )
    for f in ("bounded_steady_state_vs_unbounded", "bounded_steady_window_ratio"):
        if f not in summary:
            fail(f"{path}: summary lacks {f!r}")
    steady = summary["bounded_steady_state_vs_unbounded"]
    if steady < MIN_BOUNDED_STEADY_VS_UNBOUNDED:
        fail(
            f"{path}: bounded steady state only {steady:.2f}x vs unbounded"
            f" (gate: >= {MIN_BOUNDED_STEADY_VS_UNBOUNDED}x)"
        )
    return steady


def check_playout_lanes(path, data, summary):
    """The lane-batch playout records: all three wired widths present and
    structurally complete, every width's double run bit-identical (rerun
    checksum), every width bit-identical to every other (the equivalence
    contract: batching must not change a single playout), and the 8-wide
    batch faster than the scalar cpu_playouts record by the gate margin."""
    recs = {r.get("lanes"): r for r in data if r.get("record") == "playout_lanes"}
    for width in PLAYOUT_LANES_WIDTHS:
        if width not in recs:
            fail(f"{path}: missing playout_lanes record for width {width}")
        rec = recs[width]
        for f in PLAYOUT_LANES_FIELDS:
            if f not in rec:
                fail(f"{path}: playout_lanes[{width}]: missing field {f!r}")
        if rec["checksum"] != rec["checksum_rerun"]:
            fail(
                f"{path}: playout_lanes[{width}] nondeterministic: checksum"
                f" {rec['checksum']} != rerun {rec['checksum_rerun']}"
            )
    base = recs[PLAYOUT_LANES_WIDTHS[0]]
    for width in PLAYOUT_LANES_WIDTHS[1:]:
        for f in ("playouts", "plies", "checksum"):
            if recs[width][f] != base[f]:
                fail(
                    f"{path}: playout_lanes[{width}] diverges from width"
                    f" {PLAYOUT_LANES_WIDTHS[0]} on {f!r}:"
                    f" {recs[width][f]} != {base[f]}"
                    " (lane batching must be bit-identical to scalar)"
                )
    scalar = next((r for r in data if r.get("record") == "cpu_playouts"), None)
    if scalar is None or "playouts_per_sec" not in scalar:
        fail(f"{path}: no cpu_playouts record to gate playout_lanes against")
    speedup = summary.get("playout_lanes_speedup_vs_scalar")
    if speedup is None:
        fail(f"{path}: summary lacks playout_lanes_speedup_vs_scalar")
    recomputed = recs[8]["playouts_per_sec"] / scalar["playouts_per_sec"]
    if abs(recomputed - speedup) > 1e-6 * max(abs(recomputed), abs(speedup)):
        fail(
            f"{path}: summary playout_lanes_speedup_vs_scalar {speedup}"
            f" != lanes-8 / cpu_playouts rate ratio {recomputed}"
        )
    if speedup < MIN_PLAYOUT_LANES_SPEEDUP:
        fail(
            f"{path}: 8-wide lane batch only {speedup:.2f}x vs scalar"
            f" playouts (gate: >= {MIN_PLAYOUT_LANES_SPEEDUP}x)"
        )
    return speedup


def check_host_phases(path, data, summary):
    """host_phases records come in (scheme, layout) pairs over the same
    iteration count and must grow structurally identical trees; the summary
    must carry one speedup field per scheme."""
    pairs = {}
    for i, rec in enumerate(data):
        if rec.get("record") != "host_phases":
            continue
        where = f"{path}[{i}] (host_phases)"
        for f in HOST_PHASE_FIELDS:
            if f not in rec:
                fail(f"{where}: missing field {f!r}")
        pairs.setdefault(rec["scheme"], {})[rec["layout"]] = rec
    if not pairs:
        fail(f"{path}: no host_phases records")
    for scheme, by_layout in pairs.items():
        for layout in ("soa", "aos"):
            if layout not in by_layout:
                fail(f"{path}: host_phases[{scheme}]: missing layout {layout!r}")
        soa, aos = by_layout["soa"], by_layout["aos"]
        for f in ("blocks", "iters", "tree_nodes"):
            if soa[f] != aos[f]:
                fail(
                    f"{path}: host_phases[{scheme}]: layouts diverge on"
                    f" {f!r}: soa={soa[f]} aos={aos[f]}"
                )
        if f"host_phase_speedup_{scheme}" not in summary:
            fail(f"{path}: summary lacks host_phase_speedup_{scheme!r}")
    return sorted(pairs)


def check_device_tree(path, data, summary):
    """The device-resident tree's acceptance gate: its search record exists
    alongside block_parallel's, both carry virtual_sims_per_sec, and the
    summary ratio clears the speedup floor."""
    searches = {
        r.get("scheme"): r
        for r in data
        if r.get("record") == "search"
    }
    for scheme in ("block_parallel", "device_tree"):
        if scheme not in searches:
            fail(f"{path}: missing search record for scheme {scheme!r}")
        if "virtual_sims_per_sec" not in searches[scheme]:
            fail(f"{path}: search[{scheme}]: missing virtual_sims_per_sec")
    if searches["device_tree"]["simulations"] != searches["block_parallel"]["simulations"]:
        fail(
            f"{path}: device_tree ran {searches['device_tree']['simulations']}"
            f" simulations vs block_parallel's"
            f" {searches['block_parallel']['simulations']}"
            " (the speedup must be measured on the same budget)"
        )
    speedup = summary.get("device_tree_speedup_vs_block_parallel")
    if speedup is None:
        fail(f"{path}: summary lacks device_tree_speedup_vs_block_parallel")
    if speedup < MIN_DEVICE_TREE_SPEEDUP:
        fail(
            f"{path}: device-resident tree only {speedup:.2f}x vs"
            f" block_parallel (gate: >= {MIN_DEVICE_TREE_SPEEDUP}x)"
        )
    return speedup


def check_seq_regression(path, data, baseline_path, tolerance):
    """New sequential search throughput must stay within `tolerance` of the
    committed baseline artifact's."""

    def seq_pps(p, d):
        rec = next(
            (
                r
                for r in d
                if r.get("record") == "search" and r.get("scheme") == "sequential"
            ),
            None,
        )
        if rec is None or "playouts_per_sec" not in rec:
            fail(f"{p}: no sequential search record with playouts_per_sec")
        return rec["playouts_per_sec"]

    new = seq_pps(path, data)
    old = seq_pps(baseline_path, json.load(open(baseline_path)))
    if new < tolerance * old:
        fail(
            f"{path}: sequential playouts_per_sec regressed to {new:.0f}"
            f" (< {tolerance:.2f} x baseline {old:.0f} from {baseline_path})"
        )
    return new / old


def check_throughput(path, baseline=None, tolerance=DEFAULT_BASELINE_TOLERANCE):
    data = json.load(open(path))
    summary = next((r for r in data if r.get("record") == "summary"), None)
    if summary is None:
        fail(f"{path}: no summary record")
    speedup = summary.get("kernel_speedup_vs_lockstep")
    if speedup is None:
        fail(f"{path}: summary lacks kernel_speedup_vs_lockstep")
    if speedup < MIN_ENGINE_SPEEDUP:
        fail(
            f"{path}: engine regressed to {speedup:.2f}x vs lockstep"
            f" (gate: >= {MIN_ENGINE_SPEEDUP}x)"
        )
    sel = check_tree_ops(path, data, summary)
    steady = check_bounded_tree_ops(path, data, summary)
    resident = check_device_tree(path, data, summary)
    lanes = check_playout_lanes(path, data, summary)
    schemes = check_host_phases(path, data, summary)
    msg = (
        f"check_bench: OK: {path}: engine {speedup:.2f}x vs lockstep,"
        f" SoA select {sel:.2f}x vs AoS,"
        f" bounded steady {steady:.2f}x vs unbounded,"
        f" device tree {resident:.2f}x vs block_parallel,"
        f" lanes-8 {lanes:.2f}x vs scalar playouts,"
        f" host_phases {', '.join(schemes)}"
    )
    if baseline is not None:
        ratio = check_seq_regression(path, data, baseline, tolerance)
        msg += f", sequential {ratio:.2f}x of baseline"
    print(msg)


def split_roster(rec, field, where):
    """One comma-joined roster field -> its ordered name list."""
    names = [n for n in rec.get(field, "").split(",") if n]
    if not names:
        fail(f"{where}: roster field {field!r} missing or empty")
    if len(set(names)) != len(names):
        fail(f"{where}: roster field {field!r} has duplicates: {names}")
    return names


def check_fault_matrix(path):
    data = json.load(open(path))
    if not data:
        fail(f"{path}: no records")
    roster = data[0]
    if roster.get("kind") != "roster":
        fail(f"{path}: first record must be the roster meta-record")
    schemes = split_roster(roster, "schemes", f"{path}[0]")
    classes_order = split_roster(roster, "fault_classes", f"{path}[0]")
    cells = data[1:]
    if not cells:
        fail(f"{path}: no cells")
    classes = {}
    grid = []
    for i, rec in enumerate(cells):
        where = f"{path}[{i + 1}] ({rec.get('scheme', '?')}/{rec.get('fault_class', '?')})"
        check_phase_ledger(rec, where)
        if not rec.get("best_move"):
            fail(f"{where}: cell produced no best move")
        if "fault_class" not in rec:
            fail(f"{where}: missing fault_class")
        for f in WALL_FIELDS:
            if f in rec:
                fail(f"{where}: wall-clock field {f!r} breaks determinism diffing")
        grid.append((rec["fault_class"], rec["scheme"]))
        cls = classes.setdefault(rec["fault_class"], {"cells": 0, "injected": 0})
        cls["cells"] += 1
        cls["injected"] += rec["faults_injected"]
    # The grid must cover the roster exactly: each class x scheme once,
    # class-outer scheme-inner, in roster order.
    expected = [(c, s) for c in classes_order for s in schemes]
    if grid != expected:
        missing = sorted(set(expected) - set(grid))
        extra = sorted(set(grid) - set(expected))
        fail(
            f"{path}: cells do not match the roster grid"
            f" ({len(grid)} cells vs {len(expected)} expected;"
            f" missing {missing[:5]}, extra {extra[:5]}, or misordered)"
        )
    if "none" not in classes:
        fail(f"{path}: missing the zero-fault baseline class")
    if classes["none"]["injected"] != 0:
        fail(f"{path}: fault_class 'none' injected faults")
    for name, cls in classes.items():
        if name != "none" and cls["injected"] == 0:
            fail(f"{path}: fault class {name!r} never injected in any cell")
    print(
        f"check_bench: OK: {path}: {len(cells)} cells cover the roster"
        f" ({len(classes_order)} fault classes x {len(schemes)} schemes),"
        " all degraded gracefully"
    )


MIN_SERVE_SPEEDUP = 1.5
SERVE_SUMMARY_FIELDS = [
    "games",
    "moves",
    "move_budget_ns",
    "launches",
    "sessions_per_launch_mean",
    "sessions_per_launch_max",
    "batched_playouts_per_sec",
    "unbatched_playouts_per_sec",
    "batched_speedup_vs_unbatched",
    "latency_p50_ns",
    "latency_p95_ns",
    "latency_p99_ns",
]


def check_serve(path):
    """Multi-session serving artifact: one record per move with the exact
    (seven-phase, queue-inclusive) ledger, plus a summary whose batching
    statistics clear the amortisation gates."""
    data = json.load(open(path))
    moves = [r for r in data if r.get("kind") == "move"]
    summary = next((r for r in data if r.get("kind") == "summary"), None)
    if summary is None:
        fail(f"{path}: no summary record")
    if not moves:
        fail(f"{path}: no per-move records")
    for i, rec in enumerate(moves):
        where = f"{path}[{i}] (game {rec.get('game', '?')} ply {rec.get('ply', '?')})"
        check_phase_ledger(rec, where)
        for f in ("game", "ply", "session", "latency_ns"):
            if f not in rec:
                fail(f"{where}: missing field {f!r}")
        if rec["latency_ns"] != rec["elapsed_ns"]:
            fail(
                f"{where}: latency_ns {rec['latency_ns']} != elapsed_ns"
                f" {rec['elapsed_ns']} (service clock must match session time)"
            )
        for f in WALL_FIELDS:
            if f in rec:
                fail(f"{where}: wall-clock field {f!r} breaks determinism diffing")
    for f in SERVE_SUMMARY_FIELDS:
        if f not in summary:
            fail(f"{path}: summary lacks {f!r}")
    for f in WALL_FIELDS:
        if f in summary:
            fail(f"{path}: summary wall-clock field {f!r} breaks determinism diffing")
    if summary["sessions_per_launch_mean"] <= 1.0:
        fail(
            f"{path}: sessions_per_launch_mean"
            f" {summary['sessions_per_launch_mean']} <= 1 (no cross-session batching)"
        )
    p50, p95, p99 = (
        summary["latency_p50_ns"],
        summary["latency_p95_ns"],
        summary["latency_p99_ns"],
    )
    if not p50 <= p95 <= p99:
        fail(f"{path}: latency percentiles not ordered: {p50} / {p95} / {p99}")
    # Deadline scheduling: the predictive stopper may overshoot a per-move
    # budget by at most one batched round, comfortably under 2x budget.
    if summary["move_budget_ns"] > 0 and p99 >= 2 * summary["move_budget_ns"]:
        fail(
            f"{path}: latency_p99_ns {p99} >= 2x move budget"
            f" {summary['move_budget_ns']} (deadline scheduling broken)"
        )
    speedup = summary["batched_speedup_vs_unbatched"]
    if speedup < MIN_SERVE_SPEEDUP:
        fail(
            f"{path}: batched serving only {speedup:.2f}x vs back-to-back solo"
            f" (gate: >= {MIN_SERVE_SPEEDUP}x)"
        )
    print(
        f"check_bench: OK: {path}: {len(moves)} moves,"
        f" {summary['sessions_per_launch_mean']:.1f} sessions/launch,"
        f" batched {speedup:.2f}x vs solo, p99 within deadline slack"
    )


# Aggregate fleet throughput must scale with the shard count: the gate is
# half the ideal (devices x) to leave room for queue-drain tails, with the
# committed artifact showing near-linear scaling (~8.5x on 8 shards).
MIN_FLEET_SPEEDUP_PER_DEVICE = 0.5
FLEET_SCENARIOS = ["nominal", "overload", "faulted", "single_device"]
FLEET_SCENARIO_FIELDS = [
    "devices",
    "offered",
    "capacity",
    "admitted",
    "queued",
    "rejected",
    "replaced",
    "completed",
    "good",
    "dead_shards",
    "latency_p50_ns",
    "latency_p99_ns",
    "latency_p999_ns",
    "makespan_ns",
    "sims",
    "shards",
]
FLEET_SHARD_FIELDS = ["rank", "dead", "placed", "replaced_in", "clock_ns"]


def no_wall_fields(rec, where):
    """Recursively reject wall-clock fields — nested records included."""
    if isinstance(rec, dict):
        for f in WALL_FIELDS:
            if f in rec:
                fail(f"{where}: wall-clock field {f!r} breaks determinism diffing")
        for k, v in rec.items():
            no_wall_fields(v, f"{where}.{k}")
    elif isinstance(rec, list):
        for i, v in enumerate(rec):
            no_wall_fields(v, f"{where}[{i}]")


def check_fleet(path):
    """Fleet serving artifact: one record per scenario with exact
    admission/placement accounting and ordered latency percentiles, plus
    the aggregate-throughput summary gate."""
    data = json.load(open(path))
    scenarios = {r.get("name"): r for r in data if r.get("kind") == "scenario"}
    summary = next((r for r in data if r.get("kind") == "summary"), None)
    if summary is None:
        fail(f"{path}: no summary record")
    for name in FLEET_SCENARIOS:
        if name not in scenarios:
            fail(f"{path}: missing scenario record {name!r}")
    for i, rec in enumerate(data):
        no_wall_fields(rec, f"{path}[{i}]")
    for name, rec in scenarios.items():
        where = f"{path} ({name})"
        for f in FLEET_SCENARIO_FIELDS:
            if f not in rec:
                fail(f"{where}: missing field {f!r}")
        if rec["offered"] != rec["admitted"] + rec["rejected"]:
            fail(
                f"{where}: offered {rec['offered']} != admitted"
                f" {rec['admitted']} + rejected {rec['rejected']}"
            )
        if rec["completed"] != rec["admitted"]:
            fail(
                f"{where}: completed {rec['completed']} != admitted"
                f" {rec['admitted']} (the fleet must serve everything it admits)"
            )
        for f in FLEET_SHARD_FIELDS:
            for s in rec["shards"]:
                if f not in s:
                    fail(f"{where}: shard record missing field {f!r}")
        placed = sum(s["placed"] for s in rec["shards"])
        if placed != rec["admitted"]:
            fail(
                f"{where}: shard placements sum to {placed}"
                f" != admitted {rec['admitted']}"
            )
        replaced_in = sum(s["replaced_in"] for s in rec["shards"])
        if replaced_in != rec["replaced"]:
            fail(
                f"{where}: shard re-placements sum to {replaced_in}"
                f" != replaced {rec['replaced']}"
            )
        p50, p99, p999 = (
            rec["latency_p50_ns"],
            rec["latency_p99_ns"],
            rec["latency_p999_ns"],
        )
        if not p50 <= p99 <= p999:
            fail(f"{where}: latency percentiles not ordered: {p50} / {p99} / {p999}")
        if rec["rejected"] > 0 and rec["offered"] <= rec["capacity"]:
            fail(
                f"{where}: {rec['rejected']} rejects but offered"
                f" {rec['offered']} <= capacity {rec['capacity']}"
                " (admission control must only reject under overload)"
            )
    overload = scenarios["overload"]
    if overload["rejected"] == 0:
        fail(f"{path}: overload scenario rejected nothing (not an overload)")
    if overload["good"] <= 0:
        fail(f"{path}: no goodput under overload (SLO scheduling starved everyone)")
    faulted = scenarios["faulted"]
    if faulted["dead_shards"] == 0:
        fail(f"{path}: faulted scenario killed no shards")
    if faulted["replaced"] == 0:
        fail(f"{path}: faulted scenario re-placed no sessions")
    if faulted["completed"] != faulted["admitted"]:
        fail(f"{path}: faulted scenario lost admitted sessions")
    speedup = summary.get("speedup_vs_single_device")
    if speedup is None:
        fail(f"{path}: summary lacks speedup_vs_single_device")
    devices = summary.get("devices", 0)
    floor = MIN_FLEET_SPEEDUP_PER_DEVICE * devices
    if speedup < floor:
        fail(
            f"{path}: fleet aggregate throughput only {speedup:.2f}x"
            f" single-device on {devices} shards (gate: >= {floor:.1f}x)"
        )
    print(
        f"check_bench: OK: {path}: {len(scenarios)} scenarios,"
        f" overload rejected {overload['rejected']} with goodput"
        f" {overload['good']}, {faulted['replaced']} sessions re-placed off"
        f" {faulted['dead_shards']} dead shards,"
        f" fleet {speedup:.2f}x single-device on {devices} shards"
    )


# WU-UCT pays per-wave correction bookkeeping on one shared tree; the
# acceptance line says that overhead must stay within 10% of plain
# block-parallel virtual throughput while matching its arena strength at
# every width >= the gate width (ISSUE 10 / DESIGN.md §16).
FRONTIER_GATE_WIDTH = 64
MIN_FRONTIER_THROUGHPUT_RATIO = 0.9
FRONTIER_CELL_FIELDS = [
    "blocks",
    "threads_per_block",
    "budget_ns",
    "games",
    "win_ratio",
    "sims_per_second",
    "candidate_sims",
    "opponent_sims",
]


def check_frontier(path):
    """Batch-width x scheme frontier artifact: a roster meta-record, one
    cell per (width, scheme) with an exact phase ledger and an arena win
    ratio vs sequential at equal virtual budget, and the WU-UCT strength /
    throughput gates at every width >= the gate width."""
    data = json.load(open(path))
    if not data:
        fail(f"{path}: no records")
    roster = data[0]
    if roster.get("kind") != "roster":
        fail(f"{path}: first record must be the roster meta-record")
    schemes = split_roster(roster, "schemes", f"{path}[0]")
    widths = [int(w) for w in split_roster(roster, "widths", f"{path}[0]")]
    for scheme in ("block_parallel", "wu_uct", "pipelined"):
        if scheme not in schemes:
            fail(f"{path}: roster lacks scheme {scheme!r}")
    if not any(w >= FRONTIER_GATE_WIDTH for w in widths):
        fail(
            f"{path}: no width >= {FRONTIER_GATE_WIDTH} in {widths}"
            " (the strength gate needs a wide batch)"
        )
    cells = [r for r in data if r.get("kind") == "cell"]
    summary = next((r for r in data if r.get("kind") == "summary"), None)
    if summary is None:
        fail(f"{path}: no summary record")
    by_cell = {}
    for i, rec in enumerate(cells):
        where = f"{path} ({rec.get('scheme', '?')} w{rec.get('blocks', '?')})"
        check_phase_ledger(rec, where)
        no_wall_fields(rec, where)
        for f in FRONTIER_CELL_FIELDS:
            if f not in rec:
                fail(f"{where}: missing field {f!r}")
        if not 0.0 <= rec["win_ratio"] <= 1.0:
            fail(f"{where}: win_ratio {rec['win_ratio']} out of [0, 1]")
        if rec["games"] <= 0 or rec["sims_per_second"] <= 0:
            fail(f"{where}: empty cell (games or sims_per_second not positive)")
        by_cell[(rec["scheme"], rec["blocks"])] = rec
    expected = [(s, w) for w in widths for s in schemes]
    if [(r["scheme"], r["blocks"]) for r in cells] != expected:
        fail(
            f"{path}: cells do not match the roster grid"
            f" ({len(cells)} cells vs {len(expected)} expected, width-outer"
            " scheme-inner, in roster order)"
        )
    for w in widths:
        if w < FRONTIER_GATE_WIDTH:
            continue
        wu, bp = by_cell[("wu_uct", w)], by_cell[("block_parallel", w)]
        if wu["win_ratio"] < bp["win_ratio"]:
            fail(
                f"{path}: width {w}: wu_uct win_ratio {wu['win_ratio']:.3f}"
                f" < block_parallel {bp['win_ratio']:.3f}"
                " (the correction must not lose strength at wide batches)"
            )
        ratio = wu["sims_per_second"] / bp["sims_per_second"]
        if ratio < MIN_FRONTIER_THROUGHPUT_RATIO:
            fail(
                f"{path}: width {w}: wu_uct virtual throughput only"
                f" {ratio:.3f}x block_parallel"
                f" (gate: >= {MIN_FRONTIER_THROUGHPUT_RATIO}x)"
            )
    gate_w = max(w for w in widths if w >= FRONTIER_GATE_WIDTH)
    for f in ("gate_width", "wu_uct_win_ratio", "block_parallel_win_ratio"):
        if f not in summary:
            fail(f"{path}: summary lacks {f!r}")
    if summary["gate_width"] != gate_w:
        fail(f"{path}: summary gate_width {summary['gate_width']} != {gate_w}")
    wu, bp = by_cell[("wu_uct", gate_w)], by_cell[("block_parallel", gate_w)]
    print(
        f"check_bench: OK: {path}: {len(cells)} cells"
        f" ({len(widths)} widths x {len(schemes)} schemes); at width"
        f" {gate_w} wu_uct {wu['win_ratio']:.3f} vs block_parallel"
        f" {bp['win_ratio']:.3f} win ratio,"
        f" {wu['sims_per_second'] / bp['sims_per_second']:.3f}x throughput"
    )


def check_divergence(path):
    text = open(path).read()
    if "divergence_report" not in text.splitlines()[0]:
        fail(f"{path}: missing report header")
    rows = re.findall(r"^(opening|midgame|endgame).*?([0-9.]+)%\s*$", text, re.M)
    if len(rows) != 3:
        fail(f"{path}: expected 3 phase rows, found {len(rows)}")
    for phase, eff in rows:
        eff = float(eff)
        if not 0.0 < eff <= 100.0:
            fail(f"{path}: {phase} lane efficiency {eff}% out of (0, 100]")
    print(f"check_bench: OK: {path}: 3 phase rows, efficiencies sane")


def strip_wall(node):
    """Strips wall-clock fields recursively: top-level records and any
    nested objects (fleet per-shard sub-records, future aggregates)."""
    if isinstance(node, dict):
        for f in WALL_FIELDS:
            node.pop(f, None)
        for v in node.values():
            strip_wall(v)
    elif isinstance(node, list):
        for v in node:
            strip_wall(v)


def canon(path):
    data = json.load(open(path))
    strip_wall(data)
    json.dump(data, sys.stdout, indent=1, sort_keys=True)
    print()


CHECKS = {
    "profile.json": check_profile,
    "BENCH_throughput.json": check_throughput,
    "fault_matrix.json": check_fault_matrix,
    "fault_matrix_hex11.json": check_fault_matrix,
    "frontier.json": check_frontier,
    "serve.json": check_serve,
    "fleet.json": check_fleet,
    "divergence_report.txt": check_divergence,
}


def main(argv):
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if argv else 2
    if argv[0] == "--canon":
        if len(argv) != 2:
            fail("--canon takes exactly one file")
        canon(argv[1])
        return 0
    baseline = None
    tolerance = DEFAULT_BASELINE_TOLERANCE
    paths = []
    it = iter(argv)
    for arg in it:
        if arg == "--baseline":
            baseline = next(it, None)
            if baseline is None:
                fail("--baseline needs a file argument")
        elif arg == "--tolerance":
            try:
                tolerance = float(next(it))
            except (StopIteration, ValueError):
                fail("--tolerance needs a numeric argument")
        else:
            paths.append(arg)
    if not paths:
        fail("no artifact files given")
    for path in paths:
        name = os.path.basename(path)
        checker = CHECKS.get(name)
        if checker is None:
            fail(f"{path}: no check registered for {name!r} (known: {sorted(CHECKS)})")
        if checker is check_throughput:
            checker(path, baseline=baseline, tolerance=tolerance)
        else:
            checker(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
