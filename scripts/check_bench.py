#!/usr/bin/env python3
"""Validate bench artifacts (CI gate, also usable locally).

Usage:
    scripts/check_bench.py FILE [FILE ...]
        Validate each artifact; the check set is chosen by file name:
          profile.json           phase ledger + wall-clock fields
          BENCH_throughput.json  engine speedup gate (>= 1.5x vs lockstep)
          fault_matrix.json      every cell degraded gracefully
          divergence_report.txt  per-phase efficiency table parses

    scripts/check_bench.py --canon FILE
        Print the file's canonical form to stdout: JSON with the
        wall-clock-dependent fields (wall_ns, playouts_per_sec) stripped
        and keys sorted. Two runs of the same experiment with the same
        seed must produce identical canonical forms — diff them.

Exits non-zero with a message on the first failed check.
"""

import json
import os
import re
import sys

PHASE_FIELDS = [
    "select_ns",
    "expand_ns",
    "upload_ns",
    "kernel_ns",
    "readback_ns",
    "merge_ns",
]
FAULT_FIELDS = [
    "faults_injected",
    "faults_retried",
    "faults_degraded",
    "faults_excluded",
]
WALL_FIELDS = ["wall_ns", "playouts_per_sec"]
MIN_ENGINE_SPEEDUP = 1.5


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_phase_ledger(rec, where):
    for f in PHASE_FIELDS + FAULT_FIELDS + ["scheme", "elapsed_ns"]:
        if f not in rec:
            fail(f"{where}: missing field {f!r}")
    phase_sum = sum(rec[f] for f in PHASE_FIELDS)
    if phase_sum != rec["elapsed_ns"]:
        fail(
            f"{where}: phase sum {phase_sum} != elapsed_ns {rec['elapsed_ns']}"
            " (exact identity required)"
        )


def check_profile(path):
    data = json.load(open(path))
    if not data:
        fail(f"{path}: no records")
    for i, rec in enumerate(data):
        where = f"{path}[{i}] ({rec.get('scheme', '?')})"
        check_phase_ledger(rec, where)
        for f in WALL_FIELDS:
            if f not in rec:
                fail(f"{where}: missing wall-clock field {f!r}")
        # The profile runs no fault plan: all counters must be zero.
        for f in FAULT_FIELDS:
            if rec[f] != 0:
                fail(f"{where}: {f} = {rec[f]} but no faults were injected")
    print(f"check_bench: OK: {path}: {len(data)} records, ledger exact")


def check_throughput(path):
    data = json.load(open(path))
    summary = next((r for r in data if r.get("record") == "summary"), None)
    if summary is None:
        fail(f"{path}: no summary record")
    speedup = summary.get("kernel_speedup_vs_lockstep")
    if speedup is None:
        fail(f"{path}: summary lacks kernel_speedup_vs_lockstep")
    if speedup < MIN_ENGINE_SPEEDUP:
        fail(
            f"{path}: engine regressed to {speedup:.2f}x vs lockstep"
            f" (gate: >= {MIN_ENGINE_SPEEDUP}x)"
        )
    print(f"check_bench: OK: {path}: engine {speedup:.2f}x vs lockstep")


def check_fault_matrix(path):
    data = json.load(open(path))
    if not data:
        fail(f"{path}: no cells")
    classes = {}
    for i, rec in enumerate(data):
        where = f"{path}[{i}] ({rec.get('scheme', '?')}/{rec.get('fault_class', '?')})"
        check_phase_ledger(rec, where)
        if not rec.get("best_move"):
            fail(f"{where}: cell produced no best move")
        if "fault_class" not in rec:
            fail(f"{where}: missing fault_class")
        for f in WALL_FIELDS:
            if f in rec:
                fail(f"{where}: wall-clock field {f!r} breaks determinism diffing")
        cls = classes.setdefault(rec["fault_class"], {"cells": 0, "injected": 0})
        cls["cells"] += 1
        cls["injected"] += rec["faults_injected"]
    if "none" not in classes:
        fail(f"{path}: missing the zero-fault baseline class")
    if classes["none"]["injected"] != 0:
        fail(f"{path}: fault_class 'none' injected faults")
    for name, cls in classes.items():
        if name != "none" and cls["injected"] == 0:
            fail(f"{path}: fault class {name!r} never injected in any cell")
    print(
        f"check_bench: OK: {path}: {len(data)} cells over"
        f" {len(classes)} fault classes, all degraded gracefully"
    )


def check_divergence(path):
    text = open(path).read()
    if "divergence_report" not in text.splitlines()[0]:
        fail(f"{path}: missing report header")
    rows = re.findall(r"^(opening|midgame|endgame).*?([0-9.]+)%\s*$", text, re.M)
    if len(rows) != 3:
        fail(f"{path}: expected 3 phase rows, found {len(rows)}")
    for phase, eff in rows:
        eff = float(eff)
        if not 0.0 < eff <= 100.0:
            fail(f"{path}: {phase} lane efficiency {eff}% out of (0, 100]")
    print(f"check_bench: OK: {path}: 3 phase rows, efficiencies sane")


def canon(path):
    data = json.load(open(path))
    for rec in data:
        for f in WALL_FIELDS:
            rec.pop(f, None)
    json.dump(data, sys.stdout, indent=1, sort_keys=True)
    print()


CHECKS = {
    "profile.json": check_profile,
    "BENCH_throughput.json": check_throughput,
    "fault_matrix.json": check_fault_matrix,
    "divergence_report.txt": check_divergence,
}


def main(argv):
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if argv else 2
    if argv[0] == "--canon":
        if len(argv) != 2:
            fail("--canon takes exactly one file")
        canon(argv[1])
        return 0
    for path in argv:
        name = os.path.basename(path)
        checker = CHECKS.get(name)
        if checker is None:
            fail(f"{path}: no check registered for {name!r} (known: {sorted(CHECKS)})")
        checker(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
