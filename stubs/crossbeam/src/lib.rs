//! Offline stand-in for the subset of `crossbeam` this workspace uses.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be vendored. This stub reimplements exactly the API surface the
//! workspace touches on top of `std`:
//!
//! * [`thread::scope`] / [`thread::Scope::spawn`] — scoped threads, built on
//!   `std::thread::scope` (stable since Rust 1.63). Matching crossbeam, the
//!   spawn closure receives a `&Scope` so threads can spawn siblings, and
//!   `scope` returns a `Result` (always `Ok` here: a panicking child that was
//!   joined by the caller surfaces through its `join` result, exactly like
//!   crossbeam; an unjoined panicking child propagates the panic when the
//!   scope exits, which every caller in this workspace treats as fatal
//!   anyway).
//! * [`channel::unbounded`] with cloneable [`channel::Sender`] — built on
//!   `std::sync::mpsc`, whose `Sender` is `Clone + Send + Sync` and whose
//!   disconnect semantics (send/recv erroring once the other side is gone)
//!   match crossbeam's for the single-consumer pattern used here.

pub mod thread {
    //! Scoped threads (crossbeam-utils `thread` module subset).

    use std::any::Any;

    /// A scope for spawning threads that may borrow from the caller's stack.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope again so
        /// it can spawn further threads (crossbeam signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which borrowed-stack threads can be spawned; all
    /// threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! Multi-producer channels (crossbeam-channel subset).

    use std::fmt;
    use std::sync::mpsc;

    /// Sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Sender::send`] when the receiver has hung up.
    /// Carries the unsent message back, like crossbeam's.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders have hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; fails once the channel is empty and
        /// every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}
