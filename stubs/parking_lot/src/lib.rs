//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be vendored. Only [`Mutex`] is needed; it wraps `std::sync::Mutex`
//! and reproduces parking_lot's two observable differences from std:
//! `lock()` returns the guard directly (no `Result`), and poisoning is
//! ignored (a panic while holding the lock does not wedge later lockers).

use std::fmt;
use std::sync::Mutex as StdMutex;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-transparent semantics.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a previous panic while locked is not an error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}
