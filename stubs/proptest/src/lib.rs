//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be vendored. This stub keeps the same *testing semantics* —
//! random-input property tests with assume/assert vocabulary — with two
//! deliberate simplifications:
//!
//! * **No shrinking.** A failing case reports the failure message (with
//!   file/line) but does not minimise the input. Inputs are deterministic
//!   per test (seeded from the test's module path + name), so a failure is
//!   reproducible by just re-running the test.
//! * **Strategies are plain generators.** [`strategy::Strategy`] exposes
//!   `generate` + `prop_map`; ranges, tuples, `any`, `prop::collection::vec`
//!   and `prop::sample::select` cover every strategy expression in-tree.
//!
//! The macro surface (`proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!`, `prop_assume!`) matches the real crate's syntax,
//! including `#![proptest_config(..)]` headers, destructuring argument
//! patterns and trailing commas.

pub mod test_runner {
    //! Config, error type, RNG and the case-running loop.

    use std::fmt;

    /// Per-test configuration (`cases` = number of passing inputs required).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config that runs `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Input did not satisfy a `prop_assume!`; another input is drawn.
        Reject(String),
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Builds a rejection.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "{r}"),
            }
        }
    }

    /// Deterministic RNG driving input generation (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 uniform random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// FNV-1a hash of a test's full name, used as its RNG seed so different
    /// tests explore different inputs while staying reproducible.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drives a strategy + test-body closure over `config.cases` inputs.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// Runner with the default seed.
        pub fn new(config: ProptestConfig) -> Self {
            Self::new_with_seed(config, 0x7065_6d63_7473_2131)
        }

        /// Runner with an explicit seed (the `proptest!` macro derives one
        /// from the test name).
        pub fn new_with_seed(config: ProptestConfig, seed: u64) -> Self {
            TestRunner {
                config,
                rng: TestRng::new(seed),
            }
        }

        /// Runs `test` until `cases` inputs pass.
        ///
        /// # Panics
        /// Panics on the first [`TestCaseError::Fail`], or when rejections
        /// (via `prop_assume!`) outnumber 256× the requested cases.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
        where
            S: crate::strategy::Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            let max_rejects = u64::from(self.config.cases) * 256;
            let mut passed = 0u32;
            let mut rejects = 0u64;
            while passed < self.config.cases {
                let value = strategy.generate(&mut self.rng);
                match test(value) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejects += 1;
                        assert!(
                            rejects <= max_rejects,
                            "proptest: too many inputs rejected by prop_assume! \
                             ({rejects} rejects for {passed} passing cases)"
                        );
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest: case #{passed} failed: {msg}")
                    }
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % width) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical full-range strategy for a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The full-range strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let width = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % width) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed list of options.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Draws one of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access to the strategy modules (`prop::collection::vec`,
    /// `prop::sample::select`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests. Supports an optional
/// `#![proptest_config(expr)]` header and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_item! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_item! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_item {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let strategy = ($($arg_strat,)+);
            let mut runner = $crate::test_runner::TestRunner::new_with_seed(
                $cfg,
                $crate::test_runner::seed_from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                ),
            );
            runner.run(&strategy, |($($arg_pat,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_item! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test (soft failure: returns
/// [`TestCaseError::Fail`](test_runner::TestCaseError) from the case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format!($($fmt)*), file!(), line!()),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, $($fmt)*);
    }};
}

/// Rejects the current input (another one is drawn) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)*),
            ));
        }
    };
}
