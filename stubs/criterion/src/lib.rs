//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be vendored. This stub keeps the bench sources compiling and
//! *running* (`cargo bench`), with a much simpler measurement loop: each
//! `bench_function` warms up briefly, then times batches until ~100 ms of
//! samples are collected and prints mean ns/iteration. No statistical
//! analysis, HTML reports or comparison to saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The stub times each routine
/// call individually, so the variants only bound batch sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input; large batches are fine.
    SmallInput,
    /// Large per-iteration input; keep batches small.
    LargeInput,
    /// Run setup before every single iteration.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    /// Rough wall-clock budget for sampling one benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark sampling budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            budget: self.measurement_time,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        println!(
            "bench: {id:<50} {per_iter:>14.1} ns/iter ({} iters)",
            b.iters
        );
        self
    }
}

/// Timing context passed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the sampling budget is spent.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up (untimed).
        black_box(routine());
        let start = Instant::now();
        while start.elapsed() < self.budget && self.iters < 1_000_000 {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let start = Instant::now();
        while start.elapsed() < self.budget && self.iters < 1_000_000 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
