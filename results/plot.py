#!/usr/bin/env python3
"""Plot the TSV series produced by the pmcts-bench figure regenerators.

Usage:
    python3 results/plot.py results/quick/fig5_speed.tsv [more.tsv ...]

Each input file becomes one PNG next to it. Requires matplotlib; no other
dependencies. The TSV format is the one print_series() writes: a `# name:
title` header, then `## label` blocks of `x<TAB>y` rows.
"""

import sys
from pathlib import Path


def parse(path: Path):
    title, series, current = path.stem, {}, None
    for line in path.read_text().splitlines():
        line = line.strip()
        if line.startswith("##"):
            current = line[2:].strip()
            series[current] = []
        elif line.startswith("#"):
            title = line[1:].strip()
        elif line and current is not None:
            x, y = line.split("\t")
            series[current].append((float(x), float(y)))
    return title, series


def plot(path: Path) -> Path:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    title, series = parse(path)
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for label, points in series.items():
        xs, ys = zip(*points)
        ax.plot(xs, ys, marker="o", markersize=3, label=label)
    # Thread-count sweeps read best on a log x-axis, like the paper.
    xs_all = [x for pts in series.values() for x, _ in pts]
    if xs_all and max(xs_all) / max(min(xs_all), 1) > 50:
        ax.set_xscale("log", base=2)
    ax.set_title(title, fontsize=9)
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7)
    fig.tight_layout()
    out = path.with_suffix(".png")
    fig.savefig(out, dpi=150)
    plt.close(fig)
    return out


def main():
    paths = [Path(p) for p in sys.argv[1:]]
    if not paths:
        paths = sorted(Path(__file__).parent.glob("*/*.tsv"))
    if not paths:
        sys.exit("no TSV files given or found under results/")
    for path in paths:
        print(f"{path} -> {plot(path)}")


if __name__ == "__main__":
    main()
