//! Play Reversi against the block-parallel GPU agent from the terminal.
//!
//! You are White (O); the simulated-GPU MCTS plays Black (X). Enter moves
//! as square names (`e6`) or `pass`. With no interactive stdin (e.g. CI),
//! the example plays a short scripted opening against itself and exits.
//!
//! Run: `cargo run --release --example play_reversi`

use pmcts::games::ReversiMove;
use pmcts::prelude::*;
use pmcts_games::{Game, MoveBuf};
use std::io::BufRead;

fn ai_move(searcher: &mut BlockParallelSearcher<Reversi>, state: &Reversi) -> ReversiMove {
    let report = searcher.search(*state, SearchBudget::millis(100));
    let mv = report.best_move.expect("non-terminal");
    println!(
        "GPU plays {mv}  ({} simulations over {} trees, depth {})",
        report.simulations,
        searcher.trees(),
        report.max_depth
    );
    mv
}

fn read_human_move(state: &Reversi) -> Option<ReversiMove> {
    let mut legal = MoveBuf::new();
    state.legal_moves(&mut legal);
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        println!(
            "your move ({}): ",
            legal
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
        let line = lines.next()?.ok()?;
        match ReversiMove::parse(&line) {
            Some(mv) if legal.contains(&mv) => return Some(mv),
            Some(_) => println!("illegal move"),
            None => println!("could not parse '{line}' (try e.g. 'e6' or 'pass')"),
        }
    }
}

fn main() {
    let mut searcher = BlockParallelSearcher::<Reversi>::new(
        MctsConfig::default().with_seed(0xFACE),
        Device::c2050(),
        LaunchConfig::new(112, 64),
    );
    let mut state = Reversi::initial();
    let mut human_connected = true;

    while !state.is_terminal() {
        println!("\n{state}\n");
        let mv = match state.to_move() {
            Player::P1 => ai_move(&mut searcher, &state),
            Player::P2 => {
                if human_connected {
                    match read_human_move(&state) {
                        Some(mv) => mv,
                        None => {
                            println!("(stdin closed — letting the GPU finish the game)");
                            human_connected = false;
                            ai_move(&mut searcher, &state)
                        }
                    }
                } else {
                    ai_move(&mut searcher, &state)
                }
            }
        };
        state.apply(mv);
    }

    println!("\n{state}\n");
    let (b, w) = state.counts();
    match state.outcome().unwrap() {
        Outcome::Win(Player::P1) => println!("GPU (X) wins {b}-{w}"),
        Outcome::Win(Player::P2) => println!("you (O) win {w}-{b}"),
        Outcome::Draw => println!("draw {b}-{w}"),
    }
}
