//! A full Reversi game: block-parallel GPU player (Black) against a
//! single-core sequential MCTS (White), with the board printed as the game
//! unfolds — the matchup behind the paper's Figs. 6–7.
//!
//! Run: `cargo run --release --example reversi_match`

use pmcts::core::arena::play_game;
use pmcts::prelude::*;
use pmcts_games::Game;

fn main() {
    let budget = SearchBudget::millis(50);

    let mut gpu_player = MctsPlayer::new(
        BlockParallelSearcher::<Reversi>::new(
            MctsConfig::default().with_seed(2024),
            Device::c2050(),
            LaunchConfig::new(112, 64),
        ),
        budget,
    );
    let mut cpu_player = MctsPlayer::new(
        SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(4202)),
        budget,
    );

    println!(
        "Black (X): {}\nWhite (O): {}\nbudget: 50 ms virtual per move\n",
        GamePlayer::<Reversi>::name(&gpu_player),
        GamePlayer::<Reversi>::name(&cpu_player)
    );

    // Play move by move so we can narrate.
    let mut state = Reversi::initial();
    let mut ply = 0;
    while !state.is_terminal() {
        let mover = state.to_move();
        let mv = match mover {
            Player::P1 => gpu_player.choose(&state),
            Player::P2 => cpu_player.choose(&state),
        }
        .expect("non-terminal");
        state.apply(mv);
        ply += 1;
        let (b, w) = state.counts();
        let who = if mover == Player::P1 { "X" } else { "O" };
        println!("ply {ply:>2}: {who} plays {mv}   (X {b} - {w} O)");
        if ply % 20 == 0 {
            println!("\n{state}\n");
        }
    }

    println!("\nfinal position:\n{state}\n");
    let (b, w) = state.counts();
    match state.outcome().unwrap() {
        Outcome::Win(Player::P1) => println!("Black (GPU) wins {b}-{w}"),
        Outcome::Win(Player::P2) => println!("White (CPU) wins {w}-{b}"),
        Outcome::Draw => println!("draw {b}-{w}"),
    }

    // The same thing, headless, via the arena helper:
    let record = play_game::<Reversi>(
        &mut MctsPlayer::new(
            BlockParallelSearcher::<Reversi>::new(
                MctsConfig::default().with_seed(7),
                Device::c2050(),
                LaunchConfig::new(112, 64),
            ),
            budget,
        ),
        &mut MctsPlayer::new(
            SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(8)),
            budget,
        ),
    );
    println!(
        "\nrematch (headless): final score {:+} for Black over {} plies, {} GPU sims vs {} CPU sims",
        record.final_score, record.plies, record.simulations[0], record.simulations[1]
    );
}
