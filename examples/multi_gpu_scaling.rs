//! Multi-GPU scaling over simulated MPI (paper Fig. 9): each rank drives
//! its own simulated Tesla C2050 with block parallelism and root statistics
//! are merged with an allreduce.
//!
//! Run: `cargo run --release --example multi_gpu_scaling`

use pmcts::mpi_sim::NetworkModel;
use pmcts::prelude::*;

fn main() {
    let position = Reversi::initial();
    let launch = LaunchConfig::new(112, 64);

    println!("multi-GPU root parallelism, 112 blocks x 64 threads per GPU\n");
    println!(
        "{:>5} {:>14} {:>14} {:>10}",
        "GPUs", "simulations", "sims/s", "move"
    );
    for gpus in [1usize, 2, 4, 8] {
        let report = MultiGpuSearcher::<Reversi>::new(
            MctsConfig::default().with_seed(99),
            gpus,
            DeviceSpec::tesla_c2050(),
            launch,
            NetworkModel::infiniband(),
        )
        .search(position, SearchBudget::Iterations(6));
        println!(
            "{gpus:>5} {:>14} {:>14.0} {:>10}",
            report.simulations,
            report.sims_per_second(),
            report.best_move.unwrap()
        );
    }

    println!(
        "\nSimulations scale linearly with ranks; every rank agrees on the\nmerged move because the allreduce is deterministic and rank-ordered."
    );
}
