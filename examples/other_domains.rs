//! The paper's future work (§V) asks for "application of the algorithm to
//! other domains". Every searcher here is generic over the `Game` trait, so
//! the same block-parallel GPU scheme plays Connect-4 and Hex unchanged.
//!
//! Run: `cargo run --release --example other_domains`

use pmcts::core::arena::MatchSeries;
use pmcts::prelude::*;

fn demo<G: pmcts::games::Game>(label: &str, seed: u64)
where
    G::Move: std::fmt::Debug,
{
    let budget = SearchBudget::millis(20);
    let result = MatchSeries::<G>::run(
        10,
        |g| {
            Box::new(MctsPlayer::new(
                BlockParallelSearcher::<G>::new(
                    MctsConfig::default().with_seed(seed.wrapping_add(g)),
                    Device::c2050(),
                    LaunchConfig::new(32, 32),
                ),
                budget,
            ))
        },
        |g| {
            Box::new(pmcts::core::player::RandomPlayer::new(
                seed.wrapping_add(500 + g),
            ))
        },
    );
    let (lo, hi) = result.winloss.wilson95();
    println!(
        "{label:<10} block-parallel GPU vs random: {:>4.0}% wins over {} games (95% CI {:.0}-{:.0}%)",
        result.win_ratio() * 100.0,
        result.games,
        lo * 100.0,
        hi * 100.0
    );
}

fn main() {
    println!("the same GPU block-parallel searcher across domains:\n");
    demo::<Reversi>("Reversi", 1);
    demo::<Connect4>("Connect-4", 2);
    demo::<Hex7>("Hex 7x7", 3);

    // And a tactical check on the exactly-solvable domain:
    let blocked = TicTacToe::parse("XX. O.. ..O", Player::P2).unwrap();
    let mv = BlockParallelSearcher::<TicTacToe>::new(
        MctsConfig::default().with_seed(4),
        Device::c2050(),
        LaunchConfig::new(4, 32),
    )
    .search(blocked, SearchBudget::Iterations(60))
    .best_move
    .unwrap();
    println!("\nTic-Tac-Toe: O must block X's top row -> searcher plays cell {mv} (expected 2)");
}
