//! Hybrid CPU/GPU processing (paper §III-A, Fig. 4): launch kernels
//! asynchronously and keep deepening the trees on the CPU while the GPU
//! simulates. This example shows the depth and simulation gains over
//! GPU-only block parallelism at the same virtual budget.
//!
//! Run: `cargo run --release --example hybrid_search`

use pmcts::prelude::*;

fn main() {
    let position = Reversi::initial();
    let launch = LaunchConfig::new(112, 64);
    let budget = SearchBudget::millis(200);

    let block_report = BlockParallelSearcher::<Reversi>::new(
        MctsConfig::default().with_seed(11),
        Device::c2050(),
        launch,
    )
    .search(position, budget);

    let hybrid_report = HybridSearcher::<Reversi>::new(
        MctsConfig::default().with_seed(11),
        Device::c2050(),
        launch,
    )
    .search(position, budget);

    println!("200 ms virtual budget, 112 blocks x 64 threads\n");
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>12}",
        "scheme", "simulations", "tree nodes", "depth", "iterations"
    );
    for (label, r) in [("GPU only", &block_report), ("GPU + CPU", &hybrid_report)] {
        println!(
            "{label:<14} {:>12} {:>12} {:>10} {:>12}",
            r.simulations, r.tree_nodes, r.max_depth, r.iterations
        );
    }

    println!(
        "\nhybrid gained {:+} tree nodes and {:+} plies of depth — the paper's\nFig. 8 effect: the CPU deepens the trees while kernels are in flight.",
        hybrid_report.tree_nodes as i64 - block_report.tree_nodes as i64,
        hybrid_report.max_depth as i64 - block_report.max_depth as i64,
    );
}
