//! Position analysis: principal variation, root move table and tree shape
//! for a searched Reversi position — the debugging view used while
//! developing the searchers.
//!
//! Run: `cargo run --release --example analyze_position`

use pmcts::core::analysis::{principal_variation, tree_shape};
use pmcts::prelude::*;

fn main() {
    // A mid-game position: 12 scripted plies from the start.
    let mut position = Reversi::initial();
    let mut rng = pmcts::util::Xoshiro256pp::new(7);
    for _ in 0..12 {
        let mv = pmcts::games::Game::random_move(&position, &mut rng).unwrap();
        pmcts::games::Game::apply(&mut position, mv);
    }
    println!("{position}\n");

    // Grow a tree with the sequential engine, keeping the tree accessible.
    let mut searcher = SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(1));
    let (report, tree) = searcher.search_with_tree(position, SearchBudget::Iterations(20_000));

    println!(
        "searched {} simulations, {} nodes\n",
        report.simulations,
        tree.len()
    );

    println!("root moves (sorted by visits):");
    let mut stats = tree.root_stats();
    stats.sort_by_key(|s| std::cmp::Reverse(s.visits));
    for s in &stats {
        println!(
            "  {}  visits {:>6}  mean {:.3}",
            s.mv,
            s.visits,
            s.wins / s.visits.max(1) as f64
        );
    }

    println!("\nprincipal variation:");
    for (i, e) in principal_variation(&tree, 8).iter().enumerate() {
        println!(
            "  {:>2}. {}  ({} visits, mean {:.3})",
            i + 1,
            e.mv,
            e.visits,
            e.mean
        );
    }

    let shape = tree_shape(&tree);
    println!(
        "\ntree shape: {} nodes, max depth {}, {} leaves, mean branching {:.2}",
        shape.nodes, shape.max_depth, shape.leaves, shape.mean_branching
    );
    println!("nodes per depth:");
    for (depth, n) in shape.depth_histogram.iter().enumerate() {
        let bar = "#".repeat((*n as f64).log2().max(0.0) as usize + 1);
        println!("  {depth:>2}: {n:>6} {bar}");
    }
}
