//! Quickstart: search a Reversi position with the sequential baseline and
//! with the paper's block-parallel GPU scheme, and compare.
//!
//! Run: `cargo run --release --example quickstart`

use pmcts::prelude::*;

fn main() {
    let position = Reversi::initial();
    println!("{position}\n");

    // 1. Sequential UCT on one (simulated) CPU core, 100 ms per move.
    let budget = SearchBudget::millis(100);
    let mut cpu = SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(42));
    let cpu_report = cpu.search(position, budget);
    println!(
        "sequential CPU : move {}  ({} simulations, tree depth {}, {:.0} sims/s virtual)",
        cpu_report.best_move.unwrap(),
        cpu_report.simulations,
        cpu_report.max_depth,
        cpu_report.sims_per_second(),
    );

    // 2. Block parallelism on a simulated Tesla C2050: one tree per GPU
    //    block, 112 blocks x 64 threads, same virtual budget.
    let mut gpu = BlockParallelSearcher::<Reversi>::new(
        MctsConfig::default().with_seed(42),
        Device::c2050(),
        LaunchConfig::new(112, 64),
    );
    let gpu_report = gpu.search(position, budget);
    println!(
        "block-parallel : move {}  ({} simulations, tree depth {}, {:.0} sims/s virtual)",
        gpu_report.best_move.unwrap(),
        gpu_report.simulations,
        gpu_report.max_depth,
        gpu_report.sims_per_second(),
    );

    println!(
        "\nSame virtual time budget; the GPU ran {:.0}x more simulations.",
        gpu_report.simulations as f64 / cpu_report.simulations as f64
    );

    println!("\nroot statistics (block-parallel):");
    for stat in &gpu_report.root_stats {
        println!(
            "  {}  visits {:>7}  mean value {:.3}",
            stat.mv,
            stat.visits,
            stat.wins / stat.visits.max(1) as f64
        );
    }
}
